#include "core/opt/weighted_sum.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/opt/epsilon_constraint.h"

namespace wsnlink::core::opt {

std::optional<WeightedSumSolution> SolveWeightedSum(
    const models::ModelSet& models, const ConfigSpace& space,
    const std::vector<WeightedMetric>& weights,
    std::optional<double> fixed_snr_db) {
  if (weights.empty()) {
    throw std::invalid_argument("SolveWeightedSum: at least one weight required");
  }
  for (const auto& w : weights) {
    if (w.weight < 0.0) {
      throw std::invalid_argument("SolveWeightedSum: weights must be >= 0");
    }
  }

  const auto points = EvaluateSpace(models, space, fixed_snr_db);
  if (points.empty()) return std::nullopt;

  // Per-metric normalisation bounds over finite costs.
  struct Range {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
  };
  std::vector<Range> ranges(weights.size());
  for (const auto& p : points) {
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double c = MetricCost(p.prediction, weights[i].metric);
      if (!std::isfinite(c)) continue;
      ranges[i].lo = std::min(ranges[i].lo, c);
      ranges[i].hi = std::max(ranges[i].hi, c);
    }
  }

  std::optional<WeightedSumSolution> best;
  for (const auto& p : points) {
    double scalar = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double c = MetricCost(p.prediction, weights[i].metric);
      if (!std::isfinite(c)) {
        feasible = false;  // infinite cost (dead link): never optimal
        break;
      }
      const double span = ranges[i].hi - ranges[i].lo;
      const double normalised = span > 0.0 ? (c - ranges[i].lo) / span : 0.0;
      scalar += weights[i].weight * normalised;
    }
    if (!feasible) continue;
    if (!best || scalar < best->scalar_cost) {
      best = WeightedSumSolution{p.config, p.prediction, scalar};
    }
  }
  return best;
}

}  // namespace wsnlink::core::opt
