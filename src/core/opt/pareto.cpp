#include "core/opt/pareto.h"

#include <stdexcept>

namespace wsnlink::core::opt {

bool Dominates(const models::MetricPrediction& a,
               const models::MetricPrediction& b,
               const std::vector<Metric>& metrics) {
  if (metrics.empty()) {
    throw std::invalid_argument("Dominates: need at least one metric");
  }
  bool strictly_better = false;
  for (const Metric m : metrics) {
    const double ca = MetricCost(a, m);
    const double cb = MetricCost(b, m);
    if (ca > cb) return false;
    if (ca < cb) strictly_better = true;
  }
  return strictly_better;
}

std::vector<ParetoPoint> ParetoFront(std::vector<ParetoPoint> points,
                                     const std::vector<Metric>& metrics) {
  std::vector<ParetoPoint> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      if (Dominates(points[j].prediction, points[i].prediction, metrics)) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(points[i]);
  }
  return front;
}

}  // namespace wsnlink::core::opt
