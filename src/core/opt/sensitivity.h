// Per-parameter sensitivity analysis: which knob matters on this link?
//
// The paper's central theme is that the stack parameters act *jointly* and
// their individual leverage depends on where the link sits (the three PER
// zones). This module quantifies that: starting from a configuration, it
// sweeps each tunable parameter alone over its Table I candidate values and
// reports how far each metric can move — the one-knob reachable range. Flat
// ranges on a strong link and violent ranges in the grey zone are exactly
// the Fig. 6(d) story, now as a diagnostic a deployment can run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "core/opt/objectives.h"

namespace wsnlink::core::opt {

/// Reachable range of one metric when one parameter alone is swept.
struct MetricRange {
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double Span() const noexcept { return max - min; }
};

/// Sensitivity of all four metrics to one parameter.
struct ParameterSensitivity {
  std::string parameter;
  /// Candidate values swept (rendered for the report).
  std::string values;
  MetricRange energy_uj_per_bit;
  MetricRange max_goodput_kbps;
  MetricRange total_delay_ms;
  MetricRange plr_total;
};

/// Full report for one configuration/link.
struct SensitivityReport {
  StackConfig base;
  double snr_db = 0.0;
  std::vector<ParameterSensitivity> parameters;

  /// Renders as an aligned table (one row per parameter).
  [[nodiscard]] std::string ToString() const;

  /// The parameter whose one-knob sweep moves `metric` the most.
  [[nodiscard]] const ParameterSensitivity& MostInfluentialFor(
      Metric metric) const;
};

/// Sweeps each tunable parameter of `base` alone over the candidate values
/// in `space` (distance is placement, not tuned). Metrics are predicted at
/// `snr_db` if given, otherwise at the SNR derived from placement.
[[nodiscard]] SensitivityReport AnalyzeSensitivity(
    const models::ModelSet& models, const StackConfig& base,
    const ConfigSpace& space = ConfigSpace::PaperTableI(),
    std::optional<double> snr_db = std::nullopt);

}  // namespace wsnlink::core::opt
