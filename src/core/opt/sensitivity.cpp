#include "core/opt/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "util/table.h"

namespace wsnlink::core::opt {

namespace {

/// Folds one prediction into the per-metric ranges (skipping infinities,
/// which would make every span infinite on links with dead candidates).
void Fold(const models::MetricPrediction& p, ParameterSensitivity& out,
          bool first) {
  const auto fold = [first](MetricRange& range, double value) {
    if (!std::isfinite(value)) return;
    if (first || value < range.min) range.min = value;
    if (first || value > range.max) range.max = value;
  };
  fold(out.energy_uj_per_bit, p.energy_uj_per_bit);
  fold(out.max_goodput_kbps, p.max_goodput_kbps);
  fold(out.total_delay_ms, p.total_delay_ms);
  fold(out.plr_total, p.plr_total);
}

template <typename T, typename Setter>
ParameterSensitivity SweepOne(const models::ModelSet& models,
                              const StackConfig& base,
                              std::optional<double> snr_db,
                              std::string name, const std::vector<T>& values,
                              Setter&& set) {
  ParameterSensitivity out;
  out.parameter = std::move(name);
  bool first = true;
  std::string rendered;
  for (const T& value : values) {
    StackConfig candidate = base;
    set(candidate, value);
    const auto p = snr_db ? models.PredictAtSnr(candidate, *snr_db)
                          : models.Predict(candidate);
    Fold(p, out, first);
    first = false;
    if (!rendered.empty()) rendered += ",";
    char buf[32];
    if constexpr (std::is_same_v<T, double>) {
      std::snprintf(buf, sizeof(buf), "%g", value);
    } else {
      std::snprintf(buf, sizeof(buf), "%d", value);
    }
    rendered += buf;
  }
  out.values = std::move(rendered);
  return out;
}

}  // namespace

SensitivityReport AnalyzeSensitivity(const models::ModelSet& models,
                                     const StackConfig& base,
                                     const ConfigSpace& space,
                                     std::optional<double> snr_db) {
  base.Validate();
  space.Validate();

  SensitivityReport report;
  report.base = base;
  report.snr_db =
      snr_db ? *snr_db
             : models.LinkQuality().SnrDb(base.pa_level, base.distance_m);

  report.parameters.push_back(SweepOne(
      models, base, snr_db, "P_tx", space.pa_levels,
      [](StackConfig& c, int v) { c.pa_level = v; }));
  report.parameters.push_back(SweepOne(
      models, base, snr_db, "l_D", space.payload_bytes,
      [](StackConfig& c, int v) { c.payload_bytes = v; }));
  report.parameters.push_back(SweepOne(
      models, base, snr_db, "N_maxTries", space.max_tries,
      [](StackConfig& c, int v) { c.max_tries = v; }));
  report.parameters.push_back(SweepOne(
      models, base, snr_db, "D_retry", space.retry_delays_ms,
      [](StackConfig& c, double v) { c.retry_delay_ms = v; }));
  report.parameters.push_back(SweepOne(
      models, base, snr_db, "Q_max", space.queue_capacities,
      [](StackConfig& c, int v) { c.queue_capacity = v; }));
  report.parameters.push_back(SweepOne(
      models, base, snr_db, "T_pkt", space.pkt_intervals_ms,
      [](StackConfig& c, double v) { c.pkt_interval_ms = v; }));
  return report;
}

std::string SensitivityReport::ToString() const {
  util::TextTable table({"parameter", "values", "energy span[uJ/bit]",
                         "goodput span[kbps]", "delay span[ms]",
                         "loss span"});
  for (const auto& p : parameters) {
    table.NewRow()
        .Add(p.parameter)
        .Add(p.values)
        .Add(p.energy_uj_per_bit.Span(), 3)
        .Add(p.max_goodput_kbps.Span(), 2)
        .Add(p.total_delay_ms.Span(), 2)
        .Add(p.plr_total.Span(), 3);
  }
  return table.ToString();
}

const ParameterSensitivity& SensitivityReport::MostInfluentialFor(
    Metric metric) const {
  if (parameters.empty()) {
    throw std::logic_error("SensitivityReport: empty report");
  }
  const auto span = [metric](const ParameterSensitivity& p) {
    switch (metric) {
      case Metric::kEnergy:
        return p.energy_uj_per_bit.Span();
      case Metric::kGoodput:
        return p.max_goodput_kbps.Span();
      case Metric::kDelay:
        return p.total_delay_ms.Span();
      case Metric::kLoss:
        return p.plr_total.Span();
    }
    return 0.0;
  };
  const ParameterSensitivity* best = &parameters.front();
  for (const auto& p : parameters) {
    if (span(p) > span(*best)) best = &p;
  }
  return *best;
}

}  // namespace wsnlink::core::opt
