// Epsilon-constraint multi-objective optimizer (Sec. VIII-B).
//
// The paper formulates joint parameter tuning as
//
//   min (M_1(c), ..., M_k(c))  over the discrete config space
//
// and points at the epsilon-constraint method: optimise one primary metric
// subject to upper bounds ("epsilons") on the others. Over a discrete space
// the method is an exhaustive filtered search, which is exactly what we do —
// the full Table I space is < 50k points and the model evaluation is cheap.
#pragma once

#include <optional>
#include <vector>

#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "core/opt/objectives.h"
#include "core/opt/pareto.h"

namespace wsnlink::core::opt {

/// One epsilon constraint: MetricCost(metric) <= max_cost (note: goodput
/// costs are negated, so goodput constraints are *lower* bounds on goodput
/// — use the helpers below to avoid sign mistakes).
struct Constraint {
  Metric metric;
  double max_cost;
};

/// Upper bound on a lower-is-better metric (energy, delay, loss).
[[nodiscard]] Constraint AtMost(Metric metric, double bound);

/// Lower bound on goodput.
[[nodiscard]] Constraint GoodputAtLeast(double kbps);

/// Optimization problem: minimise `objective` subject to `constraints`.
struct Problem {
  Metric objective = Metric::kEnergy;
  std::vector<Constraint> constraints;
  /// Configurations are evaluated at the SNR derived from placement unless
  /// `fixed_snr_db` is set (e.g. a measured link quality).
  std::optional<double> fixed_snr_db;
};

/// Solution: the winning configuration and its predicted metrics.
struct Solution {
  StackConfig config;
  models::MetricPrediction prediction;
  /// Number of configurations satisfying every constraint.
  std::size_t feasible_count = 0;
};

/// Exhaustive epsilon-constraint search over a discrete space.
///
/// Returns nullopt when no configuration satisfies all constraints.
[[nodiscard]] std::optional<Solution> SolveEpsilonConstraint(
    const models::ModelSet& models, const ConfigSpace& space,
    const Problem& problem);

/// Convenience: evaluate every configuration in the space, for Pareto-front
/// construction or custom filtering.
[[nodiscard]] std::vector<ParetoPoint> EvaluateSpace(
    const models::ModelSet& models, const ConfigSpace& space,
    std::optional<double> fixed_snr_db = std::nullopt);

}  // namespace wsnlink::core::opt
