// Weighted-sum scalarisation — the second classic MOP technique.
//
// Sec. VIII-B notes "many MOP solving techniques can be applied" to the
// multi-objective problem; the epsilon-constraint method is implemented in
// epsilon_constraint.*. This module adds weighted-sum scalarisation:
// minimise sum_i w_i * normalised_cost_i over the discrete space. Costs are
// normalised to [0, 1] by the per-metric min/max over the feasible space so
// that weights express intent rather than unit juggling. Weighted sums can
// only reach convex-hull points of the Pareto front; the bench comparison
// with the epsilon-constraint solver makes that textbook caveat observable.
#pragma once

#include <optional>
#include <vector>

#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "core/opt/objectives.h"

namespace wsnlink::core::opt {

/// One weighted objective.
struct WeightedMetric {
  Metric metric;
  /// Relative weight, >= 0; weights need not sum to 1.
  double weight = 1.0;
};

/// Result of a weighted-sum optimisation.
struct WeightedSumSolution {
  StackConfig config;
  models::MetricPrediction prediction;
  /// The achieved scalarised cost in [0, sum of weights].
  double scalar_cost = 0.0;
};

/// Minimises the weighted sum of normalised metric costs over the space.
///
/// Returns nullopt when the space is empty after degenerate-metric removal
/// (a metric whose cost is constant over the space carries no information
/// and is ignored). Throws std::invalid_argument when no weights are given
/// or any weight is negative.
[[nodiscard]] std::optional<WeightedSumSolution> SolveWeightedSum(
    const models::ModelSet& models, const ConfigSpace& space,
    const std::vector<WeightedMetric>& weights,
    std::optional<double> fixed_snr_db = std::nullopt);

}  // namespace wsnlink::core::opt
