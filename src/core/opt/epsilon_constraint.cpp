#include "core/opt/epsilon_constraint.h"

namespace wsnlink::core::opt {

Constraint AtMost(Metric metric, double bound) {
  // For lower-is-better metrics, cost == value.
  return Constraint{metric, bound};
}

Constraint GoodputAtLeast(double kbps) {
  // Goodput cost is -goodput; goodput >= k  <=>  cost <= -k.
  return Constraint{Metric::kGoodput, -kbps};
}

std::optional<Solution> SolveEpsilonConstraint(const models::ModelSet& models,
                                               const ConfigSpace& space,
                                               const Problem& problem) {
  space.Validate();
  std::optional<Solution> best;
  std::size_t feasible = 0;

  const std::size_t size = space.Size();
  for (std::size_t i = 0; i < size; ++i) {
    const StackConfig config = space.At(i);
    const auto prediction =
        problem.fixed_snr_db
            ? models.PredictAtSnr(config, *problem.fixed_snr_db)
            : models.Predict(config);

    bool ok = true;
    for (const auto& constraint : problem.constraints) {
      if (MetricCost(prediction, constraint.metric) > constraint.max_cost) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++feasible;

    const double cost = MetricCost(prediction, problem.objective);
    if (!best || cost < MetricCost(best->prediction, problem.objective)) {
      best = Solution{config, prediction, 0};
    }
  }
  if (best) best->feasible_count = feasible;
  return best;
}

std::vector<ParetoPoint> EvaluateSpace(const models::ModelSet& models,
                                       const ConfigSpace& space,
                                       std::optional<double> fixed_snr_db) {
  space.Validate();
  std::vector<ParetoPoint> points;
  const std::size_t size = space.Size();
  points.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const StackConfig config = space.At(i);
    const auto prediction = fixed_snr_db
                                ? models.PredictAtSnr(config, *fixed_snr_db)
                                : models.Predict(config);
    points.push_back(ParetoPoint{config, prediction});
  }
  return points;
}

}  // namespace wsnlink::core::opt
