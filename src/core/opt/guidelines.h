// Per-metric parameter-optimization guidelines (Secs. IV-C, V-C, VI-B,
// VII-B), turned into executable procedures.
//
// Each guideline takes the fixed givens of a deployment (distance, traffic)
// and returns the recommended settings of the tunable knobs, following the
// paper's prose exactly:
//
//  * Energy (IV-C):  pick the lowest output power that lifts the link into
//    the low-impact PER zone and use the maximum payload; if even maximum
//    power falls short, shrink the payload to the model's energy optimum.
//  * Goodput (V-C):  outside the grey zone use maximum payload and a large
//    N_maxTries; inside it, use the model's goodput-optimal payload, which
//    shrinks with SNR and grows with N_maxTries.
//  * Delay (VI-B):   choose parameters so utilization rho < 1; large queues
//    and retransmission budgets are delay-toxic in the grey zone.
//  * Loss (VII-B):   pick the smallest N_maxTries that meets the radio-loss
//    target while keeping rho < 1; if rho >= 1 is unavoidable, enlarge the
//    queue to absorb bursts.
#pragma once

#include "core/models/model_set.h"
#include "core/stack_config.h"

namespace wsnlink::core::opt {

/// Deployment givens a guideline cannot change.
struct Deployment {
  double distance_m = 20.0;
  /// Application traffic (for delay/loss guidelines). <= 0 means
  /// "saturating sender" (bulk transfer).
  double pkt_interval_ms = 100.0;
};

/// Guideline recommendation plus the model's predicted outcome.
struct Recommendation {
  StackConfig config;
  models::MetricPrediction predicted;
  /// Short explanation of which guideline branch fired.
  std::string rationale;
};

/// Executable forms of the paper's guidelines.
class Guidelines {
 public:
  explicit Guidelines(models::ModelSet models = models::ModelSet());

  /// Sec. IV-C: minimise energy per delivered bit.
  [[nodiscard]] Recommendation MinimizeEnergy(const Deployment& dep) const;

  /// Sec. V-C: maximise goodput (saturating sender assumed).
  [[nodiscard]] Recommendation MaximizeGoodput(const Deployment& dep) const;

  /// Sec. VI-B: minimise delay for the deployment's traffic.
  [[nodiscard]] Recommendation MinimizeDelay(const Deployment& dep) const;

  /// Sec. VII-B: minimise total loss for the deployment's traffic, with a
  /// radio-loss target (default 1%).
  [[nodiscard]] Recommendation MinimizeLoss(const Deployment& dep,
                                            double radio_loss_target = 0.01) const;

  [[nodiscard]] const models::ModelSet& Models() const noexcept { return models_; }

 private:
  models::ModelSet models_;
};

}  // namespace wsnlink::core::opt
