// Pareto-front extraction over metric vectors.
//
// The joint-tuning result of Sec. VIII is fundamentally a Pareto statement:
// single-parameter tuning lands strictly inside the front that joint tuning
// traces. This module computes non-dominated sets of (config, prediction)
// pairs for arbitrary metric subsets, in minimisation orientation.
#pragma once

#include <vector>

#include "core/models/model_set.h"
#include "core/opt/objectives.h"
#include "core/stack_config.h"

namespace wsnlink::core::opt {

/// A candidate point in objective space.
struct ParetoPoint {
  StackConfig config;
  models::MetricPrediction prediction;
};

/// True if `a` dominates `b` on the given metrics: no worse on all, strictly
/// better on at least one (minimisation orientation via MetricCost).
[[nodiscard]] bool Dominates(const models::MetricPrediction& a,
                             const models::MetricPrediction& b,
                             const std::vector<Metric>& metrics);

/// Returns the non-dominated subset of `points` under `metrics`, preserving
/// input order. O(n^2) — fine for the tens of thousands of configs swept.
[[nodiscard]] std::vector<ParetoPoint> ParetoFront(
    std::vector<ParetoPoint> points, const std::vector<Metric>& metrics);

}  // namespace wsnlink::core::opt
