// Online link-quality estimation and adaptive reconfiguration.
//
// Sec. III-A: "The results of RSSI deviation suggest the necessity of
// adapting to dynamic link quality for parameter tuning techniques", and
// Sec. IV-B: "adapting the payload size to the varying link quality can be
// an efficient way to minimize energy consumption in dynamic channel
// conditions". This module turns those conclusions into a runtime
// component: an EWMA SNR estimator fed by reception reports, and a
// controller that periodically re-derives (P_tx, l_D, N_maxTries) from the
// empirical models for a chosen objective.
#pragma once

#include "core/models/model_set.h"
#include "core/opt/objectives.h"
#include "core/stack_config.h"

namespace wsnlink::core::opt {

/// Exponentially-weighted moving average estimator of link SNR.
///
/// Receptions feed measured SNR directly. Losses carry no SNR reading, so
/// they are folded in pessimistically: each loss nudges the estimate
/// towards a configurable floor, bounding how long the estimator can stay
/// optimistic on a link that suddenly died.
class LinkQualityEstimator {
 public:
  /// `alpha` is the EWMA weight of a new sample in (0, 1]. `loss_step_db`
  /// is the downward nudge applied per reported loss.
  explicit LinkQualityEstimator(double alpha = 0.1, double loss_step_db = 0.5,
                                double floor_db = -5.0);

  /// Feeds the SNR of a successfully received packet.
  void OnReception(double snr_db);

  /// Feeds a link-layer loss (packet exhausted its retries).
  void OnLoss();

  /// True once at least one reception has been observed.
  [[nodiscard]] bool HasEstimate() const noexcept { return has_estimate_; }

  /// Current SNR estimate in dB. Requires HasEstimate().
  [[nodiscard]] double SnrDb() const;

  /// Samples observed since construction/Reset.
  [[nodiscard]] std::size_t Receptions() const noexcept { return receptions_; }
  [[nodiscard]] std::size_t Losses() const noexcept { return losses_; }

  /// Forgets everything (e.g. after a known topology change).
  void Reset();

 private:
  double alpha_;
  double loss_step_db_;
  double floor_db_;
  double estimate_db_ = 0.0;
  bool has_estimate_ = false;
  std::size_t receptions_ = 0;
  std::size_t losses_ = 0;
};

/// What the controller optimises for.
enum class AdaptationObjective {
  kEnergy,   ///< min U_eng subject to a loss ceiling
  kGoodput,  ///< max goodput subject to an energy ceiling
};

/// Controller policy knobs.
struct AdaptiveControllerConfig {
  AdaptationObjective objective = AdaptationObjective::kEnergy;
  /// For kEnergy: the radio-loss ceiling honoured while minimising energy.
  double radio_loss_ceiling = 0.05;
  /// For kGoodput: the energy ceiling in uJ/bit (<= 0: unconstrained).
  double energy_ceiling_uj_per_bit = 0.0;
  /// Reconfigure after this many send reports (an "epoch").
  int packets_per_epoch = 50;
  /// Hysteresis: only switch when the estimate moved at least this much
  /// since the SNR the current configuration was derived for.
  double min_snr_change_db = 1.5;
};

/// Model-driven adaptive reconfiguration of one link.
///
/// Usage: forward every send outcome via Report*(), then poll
/// MaybeReconfigure() — it returns true when Config() changed.
class AdaptiveController {
 public:
  AdaptiveController(models::ModelSet models, StackConfig initial,
                     AdaptiveControllerConfig config = {});

  /// Reports a delivered packet with the SNR its copy was received at.
  void ReportReception(double snr_db);

  /// Reports a packet lost on radio (all retries exhausted).
  void ReportLoss();

  /// Re-derives the configuration if an epoch elapsed and the link moved.
  /// Returns true when the active configuration changed.
  bool MaybeReconfigure();

  /// The currently recommended configuration.
  [[nodiscard]] const StackConfig& Config() const noexcept { return config_; }

  /// The estimator (for inspection / tests).
  [[nodiscard]] const LinkQualityEstimator& Estimator() const noexcept {
    return estimator_;
  }

  /// Number of reconfigurations performed so far.
  [[nodiscard]] int Reconfigurations() const noexcept { return reconfigs_; }

  /// Derives the configuration the controller would pick at a given SNR
  /// (pure; exposed for tests and offline what-if analysis). The SNR is the
  /// one measured at `at_level`; candidates at other levels are evaluated
  /// by shifting it with the dBm difference between levels.
  [[nodiscard]] StackConfig DeriveConfig(double snr_db, int at_level) const;

 private:
  models::ModelSet models_;
  StackConfig config_;
  AdaptiveControllerConfig policy_;
  LinkQualityEstimator estimator_;
  int reports_in_epoch_ = 0;
  int reconfigs_ = 0;
  double config_snr_db_ = -1000.0;  // SNR the current config was derived at
};

}  // namespace wsnlink::core::opt
