#include "core/opt/guidelines.h"

#include <algorithm>

#include "phy/frame.h"

namespace wsnlink::core::opt {

namespace {

/// Saturating traffic: back-to-back packets. The configs we emit still need
/// a finite interval; use one that keeps the sender permanently busy.
constexpr double kSaturatingIntervalMs = 1.0;

double EffectiveInterval(const Deployment& dep) {
  return dep.pkt_interval_ms > 0.0 ? dep.pkt_interval_ms
                                   : kSaturatingIntervalMs;
}

}  // namespace

Guidelines::Guidelines(models::ModelSet models) : models_(std::move(models)) {}

Recommendation Guidelines::MinimizeEnergy(const Deployment& dep) const {
  const auto& lq = models_.LinkQuality();

  StackConfig config;
  config.distance_m = dep.distance_m;
  config.pkt_interval_ms = EffectiveInterval(dep);
  config.max_tries = 3;  // retransmission does not change U_eng (Eq. 2) but
                         // salvages packets; a moderate budget is free
                         // energy-wise.
  config.queue_capacity = 1;

  Recommendation rec;
  const int level =
      lq.MinPaLevelForSnr(dep.distance_m, models::kEnergyMaxPayloadSnrDb);
  if (level > 0) {
    // Branch 1: we can reach the low-impact zone -> max payload, minimal
    // sufficient power.
    config.pa_level = level;
    config.payload_bytes = phy::kMaxPayloadBytes;
    rec.rationale =
        "low-impact zone reachable: minimal sufficient power, max payload";
  } else {
    // Branch 2: even max power leaves us below the threshold -> max power
    // and the model's energy-optimal payload for the achievable SNR.
    config.pa_level = 31;
    const double snr = lq.SnrDb(31, dep.distance_m);
    config.payload_bytes = models_.Energy().OptimalPayload(snr, 31);
    rec.rationale =
        "grey zone at max power: payload shrunk to model optimum";
  }
  rec.config = config;
  rec.predicted = models_.Predict(config);
  return rec;
}

Recommendation Guidelines::MaximizeGoodput(const Deployment& dep) const {
  const auto& lq = models_.LinkQuality();

  StackConfig config;
  config.distance_m = dep.distance_m;
  config.pkt_interval_ms = kSaturatingIntervalMs;  // max goodput saturates
  config.queue_capacity = 30;
  config.max_tries = 8;  // Sec. V-C: large budget helps whenever retrans-
                         // mission reduces loss.
  config.retry_delay_ms = 0.0;

  Recommendation rec;
  // Best energy/goodput trade-off power: ~7 dB above the grey-zone border
  // (Sec. V-C). If unreachable, use maximum power.
  int level = lq.MinPaLevelForSnr(dep.distance_m, models::kLowImpactDb);
  if (level < 0) level = 31;
  config.pa_level = level;
  const double snr = lq.SnrDb(level, dep.distance_m);

  if (snr >= models::kGoodputMaxPayloadSnrDb) {
    config.payload_bytes = phy::kMaxPayloadBytes;
    rec.rationale = "outside grey zone: max payload, large retry budget";
  } else {
    config.payload_bytes =
        models_.Goodput().OptimalPayload(snr, config.max_tries);
    rec.rationale = "grey zone: goodput-optimal payload from model";
  }
  rec.config = config;
  rec.predicted = models_.Predict(config);
  return rec;
}

Recommendation Guidelines::MinimizeDelay(const Deployment& dep) const {
  const auto& lq = models_.LinkQuality();

  StackConfig config;
  config.distance_m = dep.distance_m;
  config.pkt_interval_ms = EffectiveInterval(dep);
  config.queue_capacity = 1;   // queueing is the delay killer (Fig. 15)
  config.retry_delay_ms = 0.0; // retry delay directly inflates service time
  config.pa_level = 31;        // highest SNR -> fewest retransmissions

  const double snr = lq.SnrDb(31, dep.distance_m);
  // Small frames have the smallest service time; but overly tiny payloads
  // waste delay per *information* bit. The guideline keeps the payload
  // moderate and bounds tries by stability.
  config.payload_bytes = std::min(50, phy::kMaxPayloadBytes);
  const int stable = models_.Delay().MaxStableTries(
      config.payload_bytes, snr, config.retry_delay_ms,
      config.pkt_interval_ms);
  config.max_tries = std::max(1, stable);

  Recommendation rec;
  rec.config = config;
  rec.predicted = models_.Predict(config);
  rec.rationale = stable >= 1
                      ? "rho < 1 maintained; queueing delay avoided"
                      : "link saturated even at N=1: delay bounded by Qmax=1";
  return rec;
}

Recommendation Guidelines::MinimizeLoss(const Deployment& dep,
                                        double radio_loss_target) const {
  const auto& lq = models_.LinkQuality();

  StackConfig config;
  config.distance_m = dep.distance_m;
  config.pkt_interval_ms = EffectiveInterval(dep);
  config.pa_level = 31;       // high SNR reduces both loss kinds (VII-B)
  config.payload_bytes = 35;  // small packets lose less per attempt
  config.retry_delay_ms = 0.0;

  const double snr = lq.SnrDb(31, dep.distance_m);
  const int needed = models_.Plr().MinTriesForLoss(config.payload_bytes, snr,
                                                   radio_loss_target);
  const int stable = models_.Delay().MaxStableTries(
      config.payload_bytes, snr, config.retry_delay_ms,
      config.pkt_interval_ms);

  Recommendation rec;
  if (stable >= needed) {
    config.max_tries = needed;
    config.queue_capacity = 1;
    rec.rationale = "loss target met with rho < 1; small queue suffices";
  } else if (stable >= 1) {
    // Retry budget capped by stability; some radio loss tolerated.
    config.max_tries = stable;
    config.queue_capacity = 1;
    rec.rationale = "retry budget capped by rho < 1 (radio/queue trade-off)";
  } else {
    // Saturated regardless: buffer deeply and take the queueing delay hit.
    config.max_tries = needed;
    config.queue_capacity = 30;
    rec.rationale = "rho >= 1 unavoidable: large queue absorbs overflow";
  }
  rec.config = config;
  rec.predicted = models_.Predict(config);
  return rec;
}

}  // namespace wsnlink::core::opt
