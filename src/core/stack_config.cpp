#include "core/stack_config.h"

#include <cstdio>
#include <stdexcept>

#include "phy/cc2420.h"
#include "phy/frame.h"

namespace wsnlink::core {

void StackConfig::Validate() const {
  if (distance_m <= 0.0) {
    throw std::invalid_argument("StackConfig: distance must be > 0");
  }
  if (!phy::IsValidPaLevel(pa_level)) {
    throw std::invalid_argument("StackConfig: invalid PA level " +
                                std::to_string(pa_level));
  }
  if (max_tries < 1) {
    throw std::invalid_argument("StackConfig: max_tries must be >= 1");
  }
  if (retry_delay_ms < 0.0) {
    throw std::invalid_argument("StackConfig: retry_delay must be >= 0");
  }
  if (queue_capacity < 1) {
    throw std::invalid_argument("StackConfig: queue capacity must be >= 1");
  }
  if (pkt_interval_ms <= 0.0) {
    throw std::invalid_argument("StackConfig: packet interval must be > 0");
  }
  phy::ValidatePayloadSize(payload_bytes);
}

std::string StackConfig::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "d=%.0fm Ptx=%d N=%d Dretry=%.0fms Qmax=%d Tpkt=%.0fms lD=%dB",
                distance_m, pa_level, max_tries, retry_delay_ms, queue_capacity,
                pkt_interval_ms, payload_bytes);
  return buf;
}

}  // namespace wsnlink::core
