#include "core/models/energy_model.h"

#include <limits>

#include "phy/cc2420.h"
#include "phy/frame.h"

namespace wsnlink::core::models {

EnergyModel::EnergyModel(PerModel per) : per_(per) {}

double EnergyModel::MicrojoulesPerBit(int payload_bytes, double snr_db,
                                      int pa_level) const {
  phy::ValidatePayloadSize(payload_bytes);
  const double e_tx = phy::EnergyPerBitMicrojoule(pa_level);
  const double per = per_.Per(payload_bytes, snr_db);
  if (per >= 1.0) return std::numeric_limits<double>::infinity();
  const double overhead_ratio =
      static_cast<double>(phy::kStackOverheadBytes + payload_bytes) /
      static_cast<double>(payload_bytes);
  return e_tx * overhead_ratio / (1.0 - per);
}

double EnergyModel::MicrojoulesPerBitFromExp(int payload_bytes,
                                             double exp_per,
                                             int pa_level) const {
  phy::ValidatePayloadSize(payload_bytes);
  const double e_tx = phy::EnergyPerBitMicrojoule(pa_level);
  const double per = per_.PerFromExp(payload_bytes, exp_per);
  if (per >= 1.0) return std::numeric_limits<double>::infinity();
  const double overhead_ratio =
      static_cast<double>(phy::kStackOverheadBytes + payload_bytes) /
      static_cast<double>(payload_bytes);
  return e_tx * overhead_ratio / (1.0 - per);
}

double EnergyModel::BitsPerMicrojoule(int payload_bytes, double snr_db,
                                      int pa_level) const {
  const double u = MicrojoulesPerBit(payload_bytes, snr_db, pa_level);
  if (!(u < std::numeric_limits<double>::infinity())) return 0.0;
  return 1.0 / u;
}

int EnergyModel::OptimalPayload(double snr_db, int pa_level) const {
  int best = 1;
  double best_u = MicrojoulesPerBit(1, snr_db, pa_level);
  for (int l = 2; l <= phy::kMaxPayloadBytes; ++l) {
    const double u = MicrojoulesPerBit(l, snr_db, pa_level);
    if (u < best_u) {
      best_u = u;
      best = l;
    }
  }
  return best;
}

}  // namespace wsnlink::core::models
