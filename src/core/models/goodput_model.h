// Empirical maximum-goodput model — paper Eq. (4).
//
//   maxGoodput = l_D / T_service * (1 - PLR_radio)
//
// Maximum goodput is the application-level throughput achievable when the
// sender keeps the stack saturated (a packet is handed down the moment the
// previous one completes), so latency equals the average service time. The
// model composes the service-time model (Eqs. 5-6) with the radio loss model
// (Eq. 8).
#pragma once

#include "core/models/plr_model.h"
#include "core/models/service_time_model.h"

namespace wsnlink::core::models {

/// Eq. (4) built on the service-time and radio-loss models.
class GoodputModel {
 public:
  explicit GoodputModel(ServiceTimeModel service = ServiceTimeModel(),
                        PlrModel plr = PlrModel());

  /// Maximum goodput in kilobits per second.
  [[nodiscard]] double MaxGoodputKbps(const ServiceTimeInputs& in) const;

  /// MaxGoodputKbps with the inner Ntries/Plr exponentials already
  /// evaluated (see ServiceTimeModel::MeanMsFromExps). Bit-identical to
  /// the scalar entry point.
  [[nodiscard]] double MaxGoodputKbpsFromExps(const ServiceTimeInputs& in,
                                              double exp_ntries,
                                              double exp_plr) const;

  /// Payload size in [1, 114] maximising goodput for the given link and MAC
  /// setting — the optimum tracked by Fig. 13 and the Sec. V-C guideline.
  [[nodiscard]] int OptimalPayload(double snr_db, int max_tries,
                                   double retry_delay_ms = 0.0) const;

  [[nodiscard]] const ServiceTimeModel& Service() const noexcept {
    return service_;
  }

 private:
  ServiceTimeModel service_;
  PlrModel plr_;
};

}  // namespace wsnlink::core::models
