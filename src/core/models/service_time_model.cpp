#include "core/models/service_time_model.h"

#include <algorithm>
#include <stdexcept>

#include "phy/frame.h"
#include "phy/timing.h"
#include "sim/time.h"

namespace wsnlink::core::models {

namespace {

constexpr double kAckMs = sim::ToMilliseconds(phy::kAckTime);
constexpr double kWaitAckMs = sim::ToMilliseconds(phy::kAckWaitTimeout);

void ValidateInputs(const ServiceTimeInputs& in) {
  phy::ValidatePayloadSize(in.payload_bytes);
  if (in.max_tries < 1) {
    throw std::invalid_argument("ServiceTimeModel: max_tries must be >= 1");
  }
  if (in.retry_delay_ms < 0.0) {
    throw std::invalid_argument("ServiceTimeModel: retry_delay must be >= 0");
  }
}

}  // namespace

ServiceTimeModel::ServiceTimeModel(NtriesModel ntries, PlrModel plr)
    : ntries_(ntries), plr_(plr) {}

double ServiceTimeModel::FrameTimeMs(int payload_bytes) {
  return sim::ToMilliseconds(phy::DataFrameAirTime(payload_bytes));
}

double ServiceTimeModel::SpiTimeMs(int payload_bytes) {
  return sim::ToMilliseconds(phy::SpiLoadTime(payload_bytes));
}

double ServiceTimeModel::MacDelayMs() noexcept {
  return sim::ToMilliseconds(phy::MeanMacDelay());
}

double ServiceTimeModel::SuccessTailMs(int payload_bytes) {
  return MacDelayMs() + FrameTimeMs(payload_bytes) + kAckMs;
}

double ServiceTimeModel::FailureTailMs(int payload_bytes) {
  return MacDelayMs() + FrameTimeMs(payload_bytes) + kWaitAckMs;
}

double ServiceTimeModel::RetryCostMs(int payload_bytes, double retry_delay_ms) {
  return retry_delay_ms + FailureTailMs(payload_bytes);
}

double ServiceTimeModel::DeliveredMs(const ServiceTimeInputs& in) const {
  ValidateInputs(in);
  const double n_tries =
      std::min(ntries_.MeanTries(in.payload_bytes, in.snr_db),
               static_cast<double>(in.max_tries));
  return SpiTimeMs(in.payload_bytes) + SuccessTailMs(in.payload_bytes) +
         (n_tries - 1.0) * RetryCostMs(in.payload_bytes, in.retry_delay_ms);
}

double ServiceTimeModel::DeliveredMsFromExp(const ServiceTimeInputs& in,
                                            double exp_ntries) const {
  ValidateInputs(in);
  const double n_tries =
      std::min(ntries_.MeanTriesFromExp(in.payload_bytes, exp_ntries),
               static_cast<double>(in.max_tries));
  return SpiTimeMs(in.payload_bytes) + SuccessTailMs(in.payload_bytes) +
         (n_tries - 1.0) * RetryCostMs(in.payload_bytes, in.retry_delay_ms);
}

double ServiceTimeModel::LostMs(const ServiceTimeInputs& in) const {
  ValidateInputs(in);
  return SpiTimeMs(in.payload_bytes) + FailureTailMs(in.payload_bytes) +
         static_cast<double>(in.max_tries - 1) *
             RetryCostMs(in.payload_bytes, in.retry_delay_ms);
}

double ServiceTimeModel::MeanMs(const ServiceTimeInputs& in) const {
  ValidateInputs(in);
  const double plr =
      plr_.RadioLoss(in.payload_bytes, in.snr_db, in.max_tries);
  return (1.0 - plr) * DeliveredMs(in) + plr * LostMs(in);
}

double ServiceTimeModel::MeanMsFromExps(const ServiceTimeInputs& in,
                                        double exp_ntries,
                                        double exp_plr) const {
  ValidateInputs(in);
  const double plr =
      plr_.RadioLossFromExp(in.payload_bytes, exp_plr, in.max_tries);
  return (1.0 - plr) * DeliveredMsFromExp(in, exp_ntries) + plr * LostMs(in);
}

}  // namespace wsnlink::core::models
