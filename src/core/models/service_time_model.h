// Empirical service-time model — paper Eqs. (5) and (6).
//
// Service time is the interval from handing a packet to the stack until the
// MAC is done with it. With the TinyOS timing constants (phy/timing.h):
//
//   T_succ  = T_MAC + T_frame + T_ACK
//   T_fail  = T_MAC + T_frame + T_waitACK
//   T_retry = D_retry + T_MAC + T_frame + T_waitACK
//
//   delivered:  T_service = T_SPI + T_succ + (N_tries - 1) * T_retry   (5)
//   lost:       T_service = T_SPI + T_fail + (N_maxTries - 1) * T_retry (6)
//
// The expected service time mixes (5) and (6) by the radio loss rate, with
// N_tries from the empirical Eq. (7) model (clamped to N_maxTries). This is
// exactly the computation behind the paper's Table II utilization examples.
#pragma once

#include "core/models/ntries_model.h"
#include "core/models/plr_model.h"

namespace wsnlink::core::models {

/// Inputs that the service time depends on.
struct ServiceTimeInputs {
  int payload_bytes = 110;
  double snr_db = 20.0;
  int max_tries = 3;
  double retry_delay_ms = 0.0;
};

/// Eqs. (5)-(6) evaluated from the stack timing constants.
class ServiceTimeModel {
 public:
  ServiceTimeModel(NtriesModel ntries = NtriesModel(),
                   PlrModel plr = PlrModel());

  /// T_frame in ms for a payload (stack overhead included).
  [[nodiscard]] static double FrameTimeMs(int payload_bytes);

  /// T_SPI in ms for a payload.
  [[nodiscard]] static double SpiTimeMs(int payload_bytes);

  /// T_MAC in ms (mean initial backoff + turnaround).
  [[nodiscard]] static double MacDelayMs() noexcept;

  /// T_succ / T_fail / T_retry in ms.
  [[nodiscard]] static double SuccessTailMs(int payload_bytes);
  [[nodiscard]] static double FailureTailMs(int payload_bytes);
  [[nodiscard]] static double RetryCostMs(int payload_bytes,
                                          double retry_delay_ms);

  /// Eq. (5): expected service time of a *delivered* packet, ms.
  [[nodiscard]] double DeliveredMs(const ServiceTimeInputs& in) const;

  /// Eq. (6): service time of a packet that exhausts all attempts, ms.
  [[nodiscard]] double LostMs(const ServiceTimeInputs& in) const;

  /// Loss-weighted mixture of Eqs. (5) and (6), ms — the average service
  /// time used for utilization and goodput.
  [[nodiscard]] double MeanMs(const ServiceTimeInputs& in) const;

  /// FromExp variants: `exp_ntries` / `exp_plr` must be the exponentials
  /// exp(b * snr) of the inner Ntries() / Plr() coefficient sets. The
  /// batch path hoists those into vectorizable sweeps; results agree bit
  /// for bit with the scalar entry points above.
  [[nodiscard]] double DeliveredMsFromExp(const ServiceTimeInputs& in,
                                          double exp_ntries) const;
  [[nodiscard]] double MeanMsFromExps(const ServiceTimeInputs& in,
                                      double exp_ntries,
                                      double exp_plr) const;

  [[nodiscard]] const NtriesModel& Ntries() const noexcept { return ntries_; }
  [[nodiscard]] const PlrModel& Plr() const noexcept { return plr_; }

 private:
  NtriesModel ntries_;
  PlrModel plr_;
};

}  // namespace wsnlink::core::models
