#include "core/models/per_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phy/frame.h"

namespace wsnlink::core::models {

PerModel::PerModel(ScaledExpCoefficients coeff) : coeff_(coeff) {
  if (coeff_.a <= 0.0) throw std::invalid_argument("PerModel: a must be > 0");
  if (coeff_.b >= 0.0) throw std::invalid_argument("PerModel: b must be < 0");
}

double PerModel::Per(int payload_bytes, double snr_db) const {
  return PerFromExp(payload_bytes, std::exp(coeff_.b * snr_db));
}

double PerModel::PerFromExp(int payload_bytes, double exp_b_snr) const {
  phy::ValidatePayloadSize(payload_bytes);
  const double raw =
      coeff_.a * static_cast<double>(payload_bytes) * exp_b_snr;
  return std::clamp(raw, 0.0, 1.0);
}

double PerModel::SnrForPer(int payload_bytes, double target) const {
  phy::ValidatePayloadSize(payload_bytes);
  if (target <= 0.0 || target >= 1.0) {
    throw std::invalid_argument("SnrForPer: target must be in (0, 1)");
  }
  // target = a * l * exp(b * snr)  =>  snr = ln(target / (a*l)) / b.
  return std::log(target / (coeff_.a * static_cast<double>(payload_bytes))) /
         coeff_.b;
}

PerModel::Zone PerModel::ClassifyZone(double snr_db) noexcept {
  if (snr_db < kGreyZoneHighDb) return Zone::kHighImpact;
  if (snr_db < kLowImpactDb) return Zone::kMediumImpact;
  return Zone::kLowImpact;
}

}  // namespace wsnlink::core::models
