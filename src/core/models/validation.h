// Model-vs-measurement validation over a campaign dataset.
//
// The paper validates each empirical model against its measurements
// (Figs. 11-12's fits, Table II's comparisons). This module runs the same
// validation wholesale over a summary dataset: for every swept
// configuration it compares the model-predicted metric vector with the
// measured one and reports error statistics, per metric and per SNR zone.
// It is how one answers "how good are the paper's models on *this*
// channel?" quantitatively.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/models/model_set.h"

namespace wsnlink::core::models {

/// Error statistics of one metric over a dataset slice.
struct MetricValidation {
  std::string metric;
  std::size_t samples = 0;
  double rmse = 0.0;
  /// Mean of (predicted - measured): positive = model pessimistic for
  /// lower-is-better metrics.
  double bias = 0.0;
  /// Mean absolute relative error over samples with measured value > eps.
  double mean_relative_error = 0.0;
};

/// Inputs for one validation sample (decoupled from experiment::SweepPoint
/// so core does not depend on the experiment layer).
struct ValidationSample {
  StackConfig config;
  double mean_snr_db = 0.0;
  double measured_per = 0.0;
  double measured_service_ms = 0.0;
  double measured_energy_uj_per_bit = 0.0;
  double measured_goodput_kbps = 0.0;
  double measured_plr_radio = 0.0;
  double measured_utilization = 0.0;
  /// Samples where nothing was delivered carry no energy observation.
  bool has_energy = false;
};

/// Full validation report.
struct ValidationReport {
  MetricValidation per;
  MetricValidation service_time;
  MetricValidation energy;
  MetricValidation plr_radio;
  MetricValidation utilization;

  /// Renders the report as an aligned text table.
  [[nodiscard]] std::string ToString() const;
};

/// Validates the model set against measured samples. Samples whose SNR
/// falls outside [min_snr_db, max_snr_db] (the models' validity region)
/// are skipped.
[[nodiscard]] ValidationReport ValidateModels(
    const ModelSet& models, std::span<const ValidationSample> samples,
    double min_snr_db = 4.0, double max_snr_db = 28.0);

}  // namespace wsnlink::core::models
