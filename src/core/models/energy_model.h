// Empirical energy model — paper Eq. (2).
//
//   U_eng(l_D, SNR, P_tx) = E_tx(P_tx) * (l_0 + l_D) / (l_D * (1 - PER))
//
// U_eng is the transmit energy spent per *delivered information bit*
// (microjoules per bit). E_tx is the CC2420 per-bit transmit energy at the
// chosen PA level, l_0 the stack overhead, and the 1/(1-PER) factor is the
// expected number of transmissions per delivered packet. Note the factor is
// exact for any finite N_maxTries as well: expected attempts per delivered
// packet is E[tries] / P(delivered) = 1/(1-PER) for the geometric process.
//
// Energy efficiency is the reciprocal: bits delivered per microjoule.
#pragma once

#include "core/models/per_model.h"

namespace wsnlink::core::models {

/// Eq. (2) built on a PerModel (defaults to the paper's fit).
class EnergyModel {
 public:
  explicit EnergyModel(PerModel per = PerModel());

  /// Energy per delivered information bit, microjoules. Returns +infinity
  /// when the model PER saturates at 1 (nothing is ever delivered).
  [[nodiscard]] double MicrojoulesPerBit(int payload_bytes, double snr_db,
                                         int pa_level) const;

  /// MicrojoulesPerBit with the PER exponential already evaluated:
  /// `exp_per` must be exp(Per().Coefficients().b * snr_db). Bit-identical
  /// to the scalar entry point (shared combination code).
  [[nodiscard]] double MicrojoulesPerBitFromExp(int payload_bytes,
                                                double exp_per,
                                                int pa_level) const;

  /// Energy efficiency: delivered bits per microjoule (0 when U_eng = inf).
  [[nodiscard]] double BitsPerMicrojoule(int payload_bytes, double snr_db,
                                         int pa_level) const;

  /// Payload size in [1, 114] minimising U_eng at the given SNR and power
  /// (exhaustive scan; the optimum the paper's Fig. 9 tracks).
  [[nodiscard]] int OptimalPayload(double snr_db, int pa_level) const;

  /// The PA level from the sweep set minimising U_eng for a given distance-
  /// dependent SNR mapping: caller supplies snr(pa_level).
  template <typename SnrFn>
  [[nodiscard]] int OptimalPaLevel(int payload_bytes, SnrFn&& snr_of_level) const;

  [[nodiscard]] const PerModel& Per() const noexcept { return per_; }

 private:
  PerModel per_;
};

template <typename SnrFn>
int EnergyModel::OptimalPaLevel(int payload_bytes, SnrFn&& snr_of_level) const {
  int best_level = 31;
  double best = MicrojoulesPerBit(payload_bytes, snr_of_level(31), 31);
  for (const int level : {3, 7, 11, 15, 19, 23, 27}) {
    const double u =
        MicrojoulesPerBit(payload_bytes, snr_of_level(level), level);
    if (u < best) {
      best = u;
      best_level = level;
    }
  }
  return best_level;
}

}  // namespace wsnlink::core::models
