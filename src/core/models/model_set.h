// The complete model family of the paper's Table III, bundled.
//
// A ModelSet is what an application carries around to make configuration
// decisions: energy (E), max goodput (G), delay (D) and radio loss (L)
// models built over one consistent set of fitted coefficients, plus the
// link-quality map translating placement and power into SNR.
#pragma once

#include <span>
#include <string>

#include "core/models/delay_model.h"
#include "core/models/energy_model.h"
#include "core/models/goodput_model.h"
#include "core/models/link_quality.h"
#include "core/models/ntries_model.h"
#include "core/models/per_model.h"
#include "core/models/plr_model.h"
#include "core/models/service_time_model.h"
#include "core/stack_config.h"

namespace wsnlink::core::models {

/// All metric predictions for one configuration at one link quality.
struct MetricPrediction {
  double snr_db = 0.0;
  double per = 0.0;                  ///< per-attempt error rate (Eq. 3)
  double mean_tries = 0.0;           ///< Eq. 7 (truncated at N_maxTries)
  double service_time_ms = 0.0;      ///< Eqs. 5-6 mixture
  double utilization = 0.0;          ///< rho = T_service / T_pkt
  double energy_uj_per_bit = 0.0;    ///< Eq. 2
  double max_goodput_kbps = 0.0;     ///< Eq. 4
  double total_delay_ms = 0.0;       ///< queue wait + service time
  double plr_radio = 0.0;            ///< Eq. 8
  double plr_queue = 0.0;            ///< fluid estimate
  double plr_total = 0.0;            ///< combined loss
};

/// Bundle of the paper's empirical models (Table III).
class ModelSet {
 public:
  /// Default-constructs every member model with the paper's coefficients.
  ModelSet();

  /// Custom coefficient construction (e.g. refitted from a fresh campaign).
  ModelSet(ScaledExpCoefficients per, ScaledExpCoefficients ntries,
           ScaledExpCoefficients plr, LinkQualityMap link_quality);

  /// Predicts every metric of a configuration from its placement (SNR is
  /// derived via the link-quality map).
  [[nodiscard]] MetricPrediction Predict(const StackConfig& config) const;

  /// Predicts every metric at an explicitly known SNR (e.g. measured at
  /// run time by the receiver), ignoring the config's distance/power.
  [[nodiscard]] MetricPrediction PredictAtSnr(const StackConfig& config,
                                              double snr_db) const;

  /// Structure-of-arrays batch Predict: fills `out[i] = Predict(configs[i])`
  /// bit for bit, but hoists the three loss-law exp() evaluations into plain
  /// contiguous sweeps the compiler can vectorize. No heap allocation;
  /// scratch lives in fixed-size stack blocks. Throws std::invalid_argument
  /// when the span sizes differ (before evaluating anything).
  void PredictBatch(std::span<const StackConfig> configs,
                    std::span<MetricPrediction> out) const;

  /// Renders Table III (model summary) as human-readable text.
  [[nodiscard]] std::string SummaryTable() const;

  [[nodiscard]] const PerModel& Per() const noexcept { return per_; }
  [[nodiscard]] const NtriesModel& Ntries() const noexcept { return ntries_; }
  [[nodiscard]] const PlrModel& Plr() const noexcept { return plr_; }
  [[nodiscard]] const ServiceTimeModel& Service() const noexcept { return service_; }
  [[nodiscard]] const EnergyModel& Energy() const noexcept { return energy_; }
  [[nodiscard]] const GoodputModel& Goodput() const noexcept { return goodput_; }
  [[nodiscard]] const DelayModel& Delay() const noexcept { return delay_; }
  [[nodiscard]] const LinkQualityMap& LinkQuality() const noexcept {
    return link_quality_;
  }

 private:
  /// PredictAtSnr with the three loss-law exponentials already evaluated;
  /// the combination code is shared with the scalar path via the models'
  /// FromExp entry points, so results agree bit for bit.
  [[nodiscard]] MetricPrediction PredictAtSnrFromExps(const StackConfig& config,
                                                      double snr_db,
                                                      double exp_per,
                                                      double exp_ntries,
                                                      double exp_plr) const;

  PerModel per_;
  NtriesModel ntries_;
  PlrModel plr_;
  ServiceTimeModel service_;
  EnergyModel energy_;
  GoodputModel goodput_;
  DelayModel delay_;
  LinkQualityMap link_quality_;
};

}  // namespace wsnlink::core::models
