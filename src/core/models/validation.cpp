#include "core/models/validation.h"

#include <cmath>

#include "util/table.h"

namespace wsnlink::core::models {

namespace {

/// Streaming accumulator of prediction errors.
class ErrorAcc {
 public:
  explicit ErrorAcc(std::string name) : name_(std::move(name)) {}

  void Add(double predicted, double measured) {
    if (!std::isfinite(predicted)) return;
    const double err = predicted - measured;
    sum_sq_ += err * err;
    sum_ += err;
    if (std::abs(measured) > 1e-6) {
      sum_rel_ += std::abs(err) / std::abs(measured);
      ++rel_count_;
    }
    ++count_;
  }

  [[nodiscard]] MetricValidation Finish() const {
    MetricValidation v;
    v.metric = name_;
    v.samples = count_;
    if (count_ > 0) {
      v.rmse = std::sqrt(sum_sq_ / static_cast<double>(count_));
      v.bias = sum_ / static_cast<double>(count_);
    }
    if (rel_count_ > 0) {
      v.mean_relative_error = sum_rel_ / static_cast<double>(rel_count_);
    }
    return v;
  }

 private:
  std::string name_;
  std::size_t count_ = 0;
  std::size_t rel_count_ = 0;
  double sum_sq_ = 0.0;
  double sum_ = 0.0;
  double sum_rel_ = 0.0;
};

}  // namespace

ValidationReport ValidateModels(const ModelSet& models,
                                std::span<const ValidationSample> samples,
                                double min_snr_db, double max_snr_db) {
  ErrorAcc per("PER (Eq.3)");
  ErrorAcc service("T_service (Eq.5-6) [ms]");
  ErrorAcc energy("U_eng (Eq.2) [uJ/bit]");
  ErrorAcc plr("PLR_radio (Eq.8)");
  ErrorAcc rho("utilization rho");

  for (const auto& s : samples) {
    if (s.mean_snr_db < min_snr_db || s.mean_snr_db > max_snr_db) continue;
    const auto p = models.PredictAtSnr(s.config, s.mean_snr_db);
    per.Add(p.per, s.measured_per);
    service.Add(p.service_time_ms, s.measured_service_ms);
    if (s.has_energy) {
      energy.Add(p.energy_uj_per_bit, s.measured_energy_uj_per_bit);
    }
    plr.Add(p.plr_radio, s.measured_plr_radio);
    rho.Add(p.utilization, s.measured_utilization);
  }

  ValidationReport report;
  report.per = per.Finish();
  report.service_time = service.Finish();
  report.energy = energy.Finish();
  report.plr_radio = plr.Finish();
  report.utilization = rho.Finish();
  return report;
}

std::string ValidationReport::ToString() const {
  util::TextTable table({"model", "samples", "RMSE", "bias", "mean rel err"});
  for (const auto* v :
       {&per, &service_time, &energy, &plr_radio, &utilization}) {
    table.NewRow()
        .Add(v->metric)
        .Add(static_cast<unsigned long>(v->samples))
        .Add(v->rmse, 4)
        .Add(v->bias, 4)
        .Add(v->mean_relative_error, 3);
  }
  return table.ToString();
}

}  // namespace wsnlink::core::models
