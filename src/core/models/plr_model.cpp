#include "core/models/plr_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phy/frame.h"

namespace wsnlink::core::models {

PlrModel::PlrModel(ScaledExpCoefficients coeff) : coeff_(coeff) {
  if (coeff_.a <= 0.0) throw std::invalid_argument("PlrModel: a must be > 0");
  if (coeff_.b >= 0.0) throw std::invalid_argument("PlrModel: b must be < 0");
}

double PlrModel::AttemptLoss(int payload_bytes, double snr_db) const {
  return AttemptLossFromExp(payload_bytes, std::exp(coeff_.b * snr_db));
}

double PlrModel::AttemptLossFromExp(int payload_bytes,
                                    double exp_b_snr) const {
  phy::ValidatePayloadSize(payload_bytes);
  const double raw =
      coeff_.a * static_cast<double>(payload_bytes) * exp_b_snr;
  return std::clamp(raw, 0.0, 1.0);
}

double PlrModel::RadioLoss(int payload_bytes, double snr_db,
                           int max_tries) const {
  return RadioLossFromExp(payload_bytes, std::exp(coeff_.b * snr_db),
                          max_tries);
}

double PlrModel::RadioLossFromExp(int payload_bytes, double exp_b_snr,
                                  int max_tries) const {
  if (max_tries < 1) {
    throw std::invalid_argument("RadioLoss: max_tries must be >= 1");
  }
  return std::pow(AttemptLossFromExp(payload_bytes, exp_b_snr), max_tries);
}

int PlrModel::MinTriesForLoss(int payload_bytes, double snr_db, double target,
                              int limit) const {
  if (target <= 0.0 || target >= 1.0) {
    throw std::invalid_argument("MinTriesForLoss: target must be in (0, 1)");
  }
  if (limit < 1) throw std::invalid_argument("MinTriesForLoss: limit must be >= 1");
  for (int n = 1; n <= limit; ++n) {
    if (RadioLoss(payload_bytes, snr_db, n) <= target) return n;
  }
  return limit;
}

double QueueLossEstimate(double utilization) {
  if (utilization < 0.0) {
    throw std::invalid_argument("QueueLossEstimate: utilization must be >= 0");
  }
  if (utilization <= 1.0) return 0.0;
  return 1.0 - 1.0 / utilization;
}

double CombineLoss(double plr_queue, double plr_radio) {
  if (plr_queue < 0.0 || plr_queue > 1.0 || plr_radio < 0.0 || plr_radio > 1.0) {
    throw std::invalid_argument("CombineLoss: rates must be in [0, 1]");
  }
  return 1.0 - (1.0 - plr_queue) * (1.0 - plr_radio);
}

}  // namespace wsnlink::core::models
