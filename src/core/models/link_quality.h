// Link-quality mapping: (P_tx, distance) -> expected SNR.
//
// The empirical models take SNR as their link-quality input; at
// configuration time an application knows its placement and power level
// instead. This helper closes the loop using the same log-distance path
// loss the channel substrate is built on, so model-based predictions line
// up with what the simulated link will actually experience on average.
#pragma once

#include "channel/path_loss.h"

namespace wsnlink::core::models {

/// Deterministic SNR predictor for a placement.
class LinkQualityMap {
 public:
  /// `noise_floor_dbm` is the average floor used as the SNR reference
  /// (paper: -95 dBm). `spatial_shadow_db` is the per-position offset if
  /// known (0 for the calibrated mean placement).
  explicit LinkQualityMap(channel::PathLossParams params = {},
                          double noise_floor_dbm = -95.0,
                          double spatial_shadow_db = 0.0);

  /// Expected RSSI in dBm for a PA level at a distance.
  [[nodiscard]] double RssiDbm(int pa_level, double distance_m) const;

  /// Expected SNR in dB for a PA level at a distance.
  [[nodiscard]] double SnrDb(int pa_level, double distance_m) const;

  /// Lowest PA level (of the sweep set) whose expected SNR reaches
  /// `target_snr_db` at the distance; nullopt-like -1 if even level 31
  /// falls short. Implements the "just enough power" guideline step.
  [[nodiscard]] int MinPaLevelForSnr(double distance_m,
                                     double target_snr_db) const;

  [[nodiscard]] double NoiseFloorDbm() const noexcept { return noise_floor_dbm_; }

 private:
  channel::PathLoss path_loss_;
  double noise_floor_dbm_;
  double spatial_shadow_db_;
};

}  // namespace wsnlink::core::models
