#include "core/models/delay_model.h"

#include <stdexcept>

namespace wsnlink::core::models {

DelayModel::DelayModel(ServiceTimeModel service) : service_(service) {}

double DelayModel::Utilization(const ServiceTimeInputs& in,
                               double pkt_interval_ms) const {
  if (pkt_interval_ms <= 0.0) {
    throw std::invalid_argument("DelayModel: packet interval must be > 0");
  }
  return service_.MeanMs(in) / pkt_interval_ms;
}

bool DelayModel::Stable(const ServiceTimeInputs& in,
                        double pkt_interval_ms) const {
  return Utilization(in, pkt_interval_ms) < 1.0;
}

double DelayModel::QueueWaitMs(const ServiceTimeInputs& in,
                               double pkt_interval_ms,
                               int queue_capacity) const {
  if (queue_capacity < 1) {
    throw std::invalid_argument("DelayModel: queue capacity must be >= 1");
  }
  const double ts = service_.MeanMs(in);
  const double rho = ts / pkt_interval_ms;
  if (rho < 1.0) {
    // M/D/1 mean wait; the deterministic-ish service of the stack makes
    // this a better estimate than M/M/1.
    const double wait = rho * ts / (2.0 * (1.0 - rho));
    // A finite queue can never hold more than its capacity worth of wait.
    const double cap = static_cast<double>(queue_capacity) * ts;
    return wait < cap ? wait : cap;
  }
  return static_cast<double>(queue_capacity) * ts;
}

double DelayModel::TotalDelayMs(const ServiceTimeInputs& in,
                                double pkt_interval_ms,
                                int queue_capacity) const {
  return QueueWaitMs(in, pkt_interval_ms, queue_capacity) + service_.MeanMs(in);
}

double DelayModel::UtilizationFromExps(const ServiceTimeInputs& in,
                                       double pkt_interval_ms,
                                       double exp_ntries,
                                       double exp_plr) const {
  if (pkt_interval_ms <= 0.0) {
    throw std::invalid_argument("DelayModel: packet interval must be > 0");
  }
  return service_.MeanMsFromExps(in, exp_ntries, exp_plr) / pkt_interval_ms;
}

double DelayModel::QueueWaitMsFromExps(const ServiceTimeInputs& in,
                                       double pkt_interval_ms,
                                       int queue_capacity,
                                       double exp_ntries,
                                       double exp_plr) const {
  if (queue_capacity < 1) {
    throw std::invalid_argument("DelayModel: queue capacity must be >= 1");
  }
  const double ts = service_.MeanMsFromExps(in, exp_ntries, exp_plr);
  const double rho = ts / pkt_interval_ms;
  if (rho < 1.0) {
    const double wait = rho * ts / (2.0 * (1.0 - rho));
    const double cap = static_cast<double>(queue_capacity) * ts;
    return wait < cap ? wait : cap;
  }
  return static_cast<double>(queue_capacity) * ts;
}

double DelayModel::TotalDelayMsFromExps(const ServiceTimeInputs& in,
                                        double pkt_interval_ms,
                                        int queue_capacity,
                                        double exp_ntries,
                                        double exp_plr) const {
  return QueueWaitMsFromExps(in, pkt_interval_ms, queue_capacity, exp_ntries,
                             exp_plr) +
         service_.MeanMsFromExps(in, exp_ntries, exp_plr);
}

int DelayModel::MaxStableTries(int payload_bytes, double snr_db,
                               double retry_delay_ms, double pkt_interval_ms,
                               int limit) const {
  if (limit < 1) throw std::invalid_argument("MaxStableTries: limit must be >= 1");
  int best = 0;
  for (int n = 1; n <= limit; ++n) {
    ServiceTimeInputs in;
    in.payload_bytes = payload_bytes;
    in.snr_db = snr_db;
    in.max_tries = n;
    in.retry_delay_ms = retry_delay_ms;
    if (Stable(in, pkt_interval_ms)) best = n;
  }
  return best;
}

}  // namespace wsnlink::core::models
