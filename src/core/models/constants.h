// Fitted constants of the paper's empirical models.
//
// Each model has the scaled-exponential form  f(l_D, SNR) = a * l_D *
// exp(b * SNR)  with (a, b) fitted to the measurement campaign. The paper
// reports three instances (Sec. IV-B, V-B):
//   PER        (Eq. 3): a = 0.0128, b = -0.15
//   N_tries    (Eq. 7): extra transmissions = a * l_D * exp(b*SNR),
//                       a = 0.02,   b = -0.18
//   PLR_radio  (Eq. 8): per-packet radio loss = (a*l_D*exp(b*SNR))^N,
//                       a = 0.011,  b = -0.145
#pragma once

namespace wsnlink::core::models {

/// Coefficients of a scaled exponential a * l_D * exp(b * SNR).
struct ScaledExpCoefficients {
  double a = 0.0;
  double b = 0.0;
};

/// Paper Eq. (3) — packet error rate per transmission attempt.
inline constexpr ScaledExpCoefficients kPaperPerFit{0.0128, -0.15};

/// Paper Eq. (7) — expected extra transmissions beyond the first.
inline constexpr ScaledExpCoefficients kPaperNtriesFit{0.02, -0.18};

/// Paper Eq. (8) — per-attempt loss base of the radio loss model.
inline constexpr ScaledExpCoefficients kPaperPlrFit{0.011, -0.145};

/// Grey-zone boundaries the paper derives from Fig. 6(d): below
/// kGreyZoneLowDb the link is effectively dead for any payload; between
/// kGreyZoneLowDb and kGreyZoneHighDb is the "grey zone"/high-impact zone;
/// kLowImpactDb and above is the low-impact zone where neither SNR nor
/// payload matters much for PER.
inline constexpr double kGreyZoneLowDb = 5.0;
inline constexpr double kGreyZoneHighDb = 12.0;
inline constexpr double kLowImpactDb = 19.0;

/// SNR threshold above which maximum payload is energy-optimal (Sec. IV-B).
inline constexpr double kEnergyMaxPayloadSnrDb = 17.0;

/// SNR threshold above which maximum payload maximises goodput (Sec. VIII-A).
inline constexpr double kGoodputMaxPayloadSnrDb = 9.0;

}  // namespace wsnlink::core::models
