#include "core/models/link_quality.h"

#include "phy/cc2420.h"

namespace wsnlink::core::models {

LinkQualityMap::LinkQualityMap(channel::PathLossParams params,
                               double noise_floor_dbm,
                               double spatial_shadow_db)
    : path_loss_(params),
      noise_floor_dbm_(noise_floor_dbm),
      spatial_shadow_db_(spatial_shadow_db) {}

double LinkQualityMap::RssiDbm(int pa_level, double distance_m) const {
  return path_loss_.MeanRssiDbm(phy::OutputPowerDbm(pa_level), distance_m) +
         spatial_shadow_db_;
}

double LinkQualityMap::SnrDb(int pa_level, double distance_m) const {
  return RssiDbm(pa_level, distance_m) - noise_floor_dbm_;
}

int LinkQualityMap::MinPaLevelForSnr(double distance_m,
                                     double target_snr_db) const {
  for (const auto& entry : phy::PaLevels()) {
    if (SnrDb(entry.level, distance_m) >= target_snr_db) return entry.level;
  }
  return -1;
}

}  // namespace wsnlink::core::models
