#include "core/models/ntries_model.h"

#include <cmath>
#include <stdexcept>

#include "phy/frame.h"

namespace wsnlink::core::models {

NtriesModel::NtriesModel(ScaledExpCoefficients coeff) : coeff_(coeff) {
  if (coeff_.a <= 0.0) throw std::invalid_argument("NtriesModel: a must be > 0");
  if (coeff_.b >= 0.0) throw std::invalid_argument("NtriesModel: b must be < 0");
}

double NtriesModel::MeanTries(int payload_bytes, double snr_db) const {
  return MeanTriesFromExp(payload_bytes, std::exp(coeff_.b * snr_db));
}

double NtriesModel::MeanTriesFromExp(int payload_bytes,
                                     double exp_b_snr) const {
  phy::ValidatePayloadSize(payload_bytes);
  return 1.0 + coeff_.a * static_cast<double>(payload_bytes) * exp_b_snr;
}

double NtriesModel::ImpliedAttemptFailure(int payload_bytes,
                                          double snr_db) const {
  const double x = MeanTries(payload_bytes, snr_db) - 1.0;
  return x / (1.0 + x);
}

double NtriesModel::MeanTriesTruncated(int payload_bytes, double snr_db,
                                       int max_tries) const {
  return MeanTriesTruncatedFromExp(payload_bytes,
                                   std::exp(coeff_.b * snr_db), max_tries);
}

double NtriesModel::MeanTriesTruncatedFromExp(int payload_bytes,
                                              double exp_b_snr,
                                              int max_tries) const {
  if (max_tries < 1) {
    throw std::invalid_argument("MeanTriesTruncated: max_tries must be >= 1");
  }
  // Implied per-attempt failure p = x / (1 + x), x = MeanTries - 1. The
  // (1 + x) - 1 round trip is kept verbatim: simplifying it algebraically
  // would change the floating-point result.
  const double x = MeanTriesFromExp(payload_bytes, exp_b_snr) - 1.0;
  const double p = x / (1.0 + x);
  if (p <= 0.0) return 1.0;
  // E[min(G, N)] for G ~ Geometric(success = 1-p):
  // sum_{k=0}^{N-1} p^k = (1 - p^N) / (1 - p).
  const double pn = std::pow(p, max_tries);
  return (1.0 - pn) / (1.0 - p);
}

}  // namespace wsnlink::core::models
