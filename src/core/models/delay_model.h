// Delay model — Sec. VI of the paper.
//
// Packet delay = queuing delay + service time. The paper's central delay
// result is qualitative-but-sharp: with system utilization
//
//   rho = T_service / T_pkt                                   (Sec. VI)
//
// the queuing delay is negligible for rho well below 1, explodes as rho -> 1
// and is unbounded for rho > 1 (finite queues then saturate, so delay is
// capped near Q_max * T_service). We expose rho, a stability predicate, and
// an engineering estimate of the total delay combining an M/D/1-style wait
// for rho < 1 with the full-queue cap for rho >= 1 — enough to reproduce the
// 2-3 orders-of-magnitude Fig. 15 gap and drive the Sec. VI-B guideline.
#pragma once

#include "core/models/service_time_model.h"

namespace wsnlink::core::models {

/// Utilization and delay estimates built on the service-time model.
class DelayModel {
 public:
  explicit DelayModel(ServiceTimeModel service = ServiceTimeModel());

  /// System utilization rho = mean service time / packet inter-arrival time.
  /// Requires pkt_interval_ms > 0.
  [[nodiscard]] double Utilization(const ServiceTimeInputs& in,
                                   double pkt_interval_ms) const;

  /// True when rho < 1, i.e. the configuration avoids queue build-up
  /// (the Sec. VI-B guideline predicate).
  [[nodiscard]] bool Stable(const ServiceTimeInputs& in,
                            double pkt_interval_ms) const;

  /// Expected queue waiting time in ms:
  ///   rho < 1:  M/D/1 approximation  W = rho * T_s / (2 * (1 - rho))
  ///   rho >= 1: saturated finite queue  W ~= queue_capacity * T_s.
  [[nodiscard]] double QueueWaitMs(const ServiceTimeInputs& in,
                                   double pkt_interval_ms,
                                   int queue_capacity) const;

  /// Queue wait + mean service time, ms.
  [[nodiscard]] double TotalDelayMs(const ServiceTimeInputs& in,
                                    double pkt_interval_ms,
                                    int queue_capacity) const;

  /// FromExps variants: `exp_ntries` / `exp_plr` are the precomputed
  /// exponentials consumed by ServiceTimeModel::MeanMsFromExps. Each is
  /// bit-identical to its scalar counterpart (shared combination code).
  [[nodiscard]] double UtilizationFromExps(const ServiceTimeInputs& in,
                                           double pkt_interval_ms,
                                           double exp_ntries,
                                           double exp_plr) const;
  [[nodiscard]] double QueueWaitMsFromExps(const ServiceTimeInputs& in,
                                           double pkt_interval_ms,
                                           int queue_capacity,
                                           double exp_ntries,
                                           double exp_plr) const;
  [[nodiscard]] double TotalDelayMsFromExps(const ServiceTimeInputs& in,
                                            double pkt_interval_ms,
                                            int queue_capacity,
                                            double exp_ntries,
                                            double exp_plr) const;

  /// Largest N_maxTries (in [1, limit]) keeping rho < 1, or 0 if even a
  /// single attempt saturates the link — the knob Sec. VII-B turns.
  [[nodiscard]] int MaxStableTries(int payload_bytes, double snr_db,
                                   double retry_delay_ms,
                                   double pkt_interval_ms,
                                   int limit = 8) const;

  [[nodiscard]] const ServiceTimeModel& Service() const noexcept {
    return service_;
  }

 private:
  ServiceTimeModel service_;
};

}  // namespace wsnlink::core::models
