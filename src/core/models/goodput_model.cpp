#include "core/models/goodput_model.h"

#include "phy/frame.h"
#include "util/units.h"

namespace wsnlink::core::models {

GoodputModel::GoodputModel(ServiceTimeModel service, PlrModel plr)
    : service_(service), plr_(plr) {}

double GoodputModel::MaxGoodputKbps(const ServiceTimeInputs& in) const {
  const double service_ms = service_.MeanMs(in);
  const double plr = plr_.RadioLoss(in.payload_bytes, in.snr_db, in.max_tries);
  const double bits = util::kBitsPerByte * static_cast<double>(in.payload_bytes);
  // bits / ms == kbit/s.
  return bits / service_ms * (1.0 - plr);
}

double GoodputModel::MaxGoodputKbpsFromExps(const ServiceTimeInputs& in,
                                            double exp_ntries,
                                            double exp_plr) const {
  const double service_ms = service_.MeanMsFromExps(in, exp_ntries, exp_plr);
  const double plr =
      plr_.RadioLossFromExp(in.payload_bytes, exp_plr, in.max_tries);
  const double bits = util::kBitsPerByte * static_cast<double>(in.payload_bytes);
  // bits / ms == kbit/s.
  return bits / service_ms * (1.0 - plr);
}

int GoodputModel::OptimalPayload(double snr_db, int max_tries,
                                 double retry_delay_ms) const {
  int best = 1;
  double best_goodput = -1.0;
  for (int l = 1; l <= phy::kMaxPayloadBytes; ++l) {
    ServiceTimeInputs in;
    in.payload_bytes = l;
    in.snr_db = snr_db;
    in.max_tries = max_tries;
    in.retry_delay_ms = retry_delay_ms;
    const double g = MaxGoodputKbps(in);
    if (g > best_goodput) {
      best_goodput = g;
      best = l;
    }
  }
  return best;
}

}  // namespace wsnlink::core::models
