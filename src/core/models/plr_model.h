// Empirical packet-loss models — paper Eq. (8) plus the queuing-loss
// estimate of Sec. VII.
//
//   PLR_radio(l_D, SNR, N) = (a * l_D * exp(b * SNR))^N,
//   a = 0.011, b = -0.145
//
// Radio loss is the probability that all N_maxTries transmission attempts
// fail. Queuing loss (buffer overflow) is not given a closed form in the
// paper; Sec. VII's guideline reasons through the system utilization rho, so
// we provide the corresponding fluid estimate: when rho > 1, the fraction of
// arrivals the server can never drain is 1 - 1/rho.
#pragma once

#include "core/models/constants.h"

namespace wsnlink::core::models {

/// Eq. (8) with pluggable coefficients (defaults to the paper's fit).
class PlrModel {
 public:
  explicit PlrModel(ScaledExpCoefficients coeff = kPaperPlrFit);

  /// Per-attempt loss probability (the base of Eq. 8), clamped to [0, 1].
  [[nodiscard]] double AttemptLoss(int payload_bytes, double snr_db) const;

  /// Radio loss rate after up to `max_tries` attempts (Eq. 8).
  [[nodiscard]] double RadioLoss(int payload_bytes, double snr_db,
                                 int max_tries) const;

  /// FromExp variants: `exp_b_snr` must be exp(Coefficients().b * snr_db).
  /// The scalar entry points delegate here, so the batch path (which
  /// hoists the exp() into a vectorizable sweep) agrees bit for bit.
  [[nodiscard]] double AttemptLossFromExp(int payload_bytes,
                                          double exp_b_snr) const;
  [[nodiscard]] double RadioLossFromExp(int payload_bytes, double exp_b_snr,
                                        int max_tries) const;

  /// Smallest N_maxTries achieving RadioLoss <= target, or `limit` if even
  /// `limit` tries cannot reach it. Requires 0 < target < 1, limit >= 1.
  [[nodiscard]] int MinTriesForLoss(int payload_bytes, double snr_db,
                                    double target, int limit = 8) const;

  [[nodiscard]] const ScaledExpCoefficients& Coefficients() const noexcept {
    return coeff_;
  }

 private:
  ScaledExpCoefficients coeff_;
};

/// Fluid-limit queue overflow estimate: 0 when rho <= 1, else 1 - 1/rho.
/// (With a finite queue the measured value also includes transient bursts;
/// this is the guideline-level estimate of Sec. VII-B.)
[[nodiscard]] double QueueLossEstimate(double utilization);

/// Combines independent radio and queue loss into a total packet loss rate.
[[nodiscard]] double CombineLoss(double plr_queue, double plr_radio);

}  // namespace wsnlink::core::models
