// Empirical packet-error-rate model — paper Eq. (3).
//
//   PER(l_D, SNR) = a * l_D * exp(b * SNR),  a = 0.0128, b = -0.15
//
// PER is the probability that one transmission attempt of a frame with
// payload l_D is not acknowledged, as a function of link SNR in dB. The
// model captures the two joint effects of Sec. III-B: linear growth with
// payload size and exponential decay with SNR.
#pragma once

#include "core/models/constants.h"

namespace wsnlink::core::models {

/// Eq. (3) with pluggable coefficients (defaults to the paper's fit).
class PerModel {
 public:
  explicit PerModel(ScaledExpCoefficients coeff = kPaperPerFit);

  /// PER for one attempt, clamped to [0, 1]. payload_bytes in [1, 114].
  [[nodiscard]] double Per(int payload_bytes, double snr_db) const;

  /// Per() with the exponential already evaluated: `exp_b_snr` must be
  /// exp(Coefficients().b * snr_db). The batch path hoists that exp() into
  /// a vectorizable sweep; Per() delegates here, so both paths share the
  /// combination arithmetic and agree bit for bit.
  [[nodiscard]] double PerFromExp(int payload_bytes, double exp_b_snr) const;

  /// SNR at which PER drops to `target` for the given payload (inverse of
  /// Eq. 3). Requires 0 < target < 1.
  [[nodiscard]] double SnrForPer(int payload_bytes, double target) const;

  /// Joint-effect zone classification of Fig. 6(d).
  enum class Zone { kHighImpact, kMediumImpact, kLowImpact };
  [[nodiscard]] static Zone ClassifyZone(double snr_db) noexcept;

  [[nodiscard]] const ScaledExpCoefficients& Coefficients() const noexcept {
    return coeff_;
  }

 private:
  ScaledExpCoefficients coeff_;
};

}  // namespace wsnlink::core::models
