// wsnlint:hot-path — part of the per-config inner loop; the zero-alloc
// invariant (docs/PERF.md) is linted here and measured by perf_sweep.
#include "core/models/model_set.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <stdexcept>

namespace wsnlink::core::models {

ModelSet::ModelSet()
    : ModelSet(kPaperPerFit, kPaperNtriesFit, kPaperPlrFit, LinkQualityMap()) {}

ModelSet::ModelSet(ScaledExpCoefficients per, ScaledExpCoefficients ntries,
                   ScaledExpCoefficients plr, LinkQualityMap link_quality)
    : per_(per),
      ntries_(ntries),
      plr_(plr),
      service_(NtriesModel(ntries), PlrModel(plr)),
      energy_(PerModel(per)),
      goodput_(ServiceTimeModel(NtriesModel(ntries), PlrModel(plr)),
               PlrModel(plr)),
      delay_(ServiceTimeModel(NtriesModel(ntries), PlrModel(plr))),
      link_quality_(link_quality) {}

MetricPrediction ModelSet::Predict(const StackConfig& config) const {
  config.Validate();
  return PredictAtSnr(config,
                      link_quality_.SnrDb(config.pa_level, config.distance_m));
}

MetricPrediction ModelSet::PredictAtSnr(const StackConfig& config,
                                        double snr_db) const {
  config.Validate();
  ServiceTimeInputs in;
  in.payload_bytes = config.payload_bytes;
  in.snr_db = snr_db;
  in.max_tries = config.max_tries;
  in.retry_delay_ms = config.retry_delay_ms;

  MetricPrediction p;
  p.snr_db = snr_db;
  p.per = per_.Per(config.payload_bytes, snr_db);
  p.mean_tries = ntries_.MeanTriesTruncated(config.payload_bytes, snr_db,
                                            config.max_tries);
  p.service_time_ms = service_.MeanMs(in);
  p.utilization = delay_.Utilization(in, config.pkt_interval_ms);
  p.energy_uj_per_bit =
      energy_.MicrojoulesPerBit(config.payload_bytes, snr_db, config.pa_level);
  p.max_goodput_kbps = goodput_.MaxGoodputKbps(in);
  p.total_delay_ms =
      delay_.TotalDelayMs(in, config.pkt_interval_ms, config.queue_capacity);
  p.plr_radio = plr_.RadioLoss(config.payload_bytes, snr_db, config.max_tries);
  p.plr_queue = QueueLossEstimate(p.utilization);
  p.plr_total = CombineLoss(p.plr_queue, p.plr_radio);
  return p;
}

MetricPrediction ModelSet::PredictAtSnrFromExps(const StackConfig& config,
                                                double snr_db,
                                                double exp_per,
                                                double exp_ntries,
                                                double exp_plr) const {
  config.Validate();
  ServiceTimeInputs in;
  in.payload_bytes = config.payload_bytes;
  in.snr_db = snr_db;
  in.max_tries = config.max_tries;
  in.retry_delay_ms = config.retry_delay_ms;

  MetricPrediction p;
  p.snr_db = snr_db;
  p.per = per_.PerFromExp(config.payload_bytes, exp_per);
  p.mean_tries = ntries_.MeanTriesTruncatedFromExp(config.payload_bytes,
                                                   exp_ntries,
                                                   config.max_tries);
  p.service_time_ms = service_.MeanMsFromExps(in, exp_ntries, exp_plr);
  p.utilization =
      delay_.UtilizationFromExps(in, config.pkt_interval_ms, exp_ntries,
                                 exp_plr);
  p.energy_uj_per_bit = energy_.MicrojoulesPerBitFromExp(config.payload_bytes,
                                                         exp_per,
                                                         config.pa_level);
  p.max_goodput_kbps = goodput_.MaxGoodputKbpsFromExps(in, exp_ntries, exp_plr);
  p.total_delay_ms =
      delay_.TotalDelayMsFromExps(in, config.pkt_interval_ms,
                                  config.queue_capacity, exp_ntries, exp_plr);
  p.plr_radio =
      plr_.RadioLossFromExp(config.payload_bytes, exp_plr, config.max_tries);
  p.plr_queue = QueueLossEstimate(p.utilization);
  p.plr_total = CombineLoss(p.plr_queue, p.plr_radio);
  return p;
}

void ModelSet::PredictBatch(std::span<const StackConfig> configs,
                            std::span<MetricPrediction> out) const {
  if (configs.size() != out.size()) {
    throw std::invalid_argument(
        "ModelSet::PredictBatch: configs and out must have the same size");
  }
  // The nested models were constructed from the same three coefficient sets
  // held by per_/ntries_/plr_, so one exponential per loss law serves every
  // downstream model. Fixed-size blocks keep scratch on the stack.
  constexpr std::size_t kBlock = 64;
  const double b_per = per_.Coefficients().b;
  const double b_ntries = ntries_.Coefficients().b;
  const double b_plr = plr_.Coefficients().b;
  double snr[kBlock];
  double e_per[kBlock];
  double e_ntries[kBlock];
  double e_plr[kBlock];
  for (std::size_t base = 0; base < configs.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, configs.size() - base);
    for (std::size_t k = 0; k < n; ++k) {
      const StackConfig& config = configs[base + k];
      config.Validate();
      snr[k] = link_quality_.SnrDb(config.pa_level, config.distance_m);
    }
    // Three plain contiguous sweeps — the auto-vectorizable hot loops.
    for (std::size_t k = 0; k < n; ++k) e_per[k] = std::exp(b_per * snr[k]);
    for (std::size_t k = 0; k < n; ++k) {
      e_ntries[k] = std::exp(b_ntries * snr[k]);
    }
    for (std::size_t k = 0; k < n; ++k) e_plr[k] = std::exp(b_plr * snr[k]);
    for (std::size_t k = 0; k < n; ++k) {
      out[base + k] = PredictAtSnrFromExps(configs[base + k], snr[k], e_per[k],
                                           e_ntries[k], e_plr[k]);
    }
  }
}

std::string ModelSet::SummaryTable() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "Table III: empirical models\n"
      "  E  energy     U_eng = E_tx*(l_0+l_D)/(l_D*(1-PER))          (Eq. 2)\n"
      "  -  PER        PER = %.4f * l_D * exp(%.3f * SNR)            (Eq. 3)\n"
      "  G  goodput    maxGoodput = l_D/T_service*(1-PLR_radio)      (Eq. 4)\n"
      "  D  delay      T_service per Eqs. (5)-(6); rho = T_s/T_pkt\n"
      "  -  N_tries    N = 1 + %.3f * l_D * exp(%.3f * SNR)          (Eq. 7)\n"
      "  L  radio loss PLR = (%.4f * l_D * exp(%.3f * SNR))^N        (Eq. 8)\n",
      per_.Coefficients().a, per_.Coefficients().b, ntries_.Coefficients().a,
      ntries_.Coefficients().b, plr_.Coefficients().a, plr_.Coefficients().b);
  return buf;
}

}  // namespace wsnlink::core::models
