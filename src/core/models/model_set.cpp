#include "core/models/model_set.h"

#include <cstdio>

namespace wsnlink::core::models {

ModelSet::ModelSet()
    : ModelSet(kPaperPerFit, kPaperNtriesFit, kPaperPlrFit, LinkQualityMap()) {}

ModelSet::ModelSet(ScaledExpCoefficients per, ScaledExpCoefficients ntries,
                   ScaledExpCoefficients plr, LinkQualityMap link_quality)
    : per_(per),
      ntries_(ntries),
      plr_(plr),
      service_(NtriesModel(ntries), PlrModel(plr)),
      energy_(PerModel(per)),
      goodput_(ServiceTimeModel(NtriesModel(ntries), PlrModel(plr)),
               PlrModel(plr)),
      delay_(ServiceTimeModel(NtriesModel(ntries), PlrModel(plr))),
      link_quality_(link_quality) {}

MetricPrediction ModelSet::Predict(const StackConfig& config) const {
  config.Validate();
  return PredictAtSnr(config,
                      link_quality_.SnrDb(config.pa_level, config.distance_m));
}

MetricPrediction ModelSet::PredictAtSnr(const StackConfig& config,
                                        double snr_db) const {
  config.Validate();
  ServiceTimeInputs in;
  in.payload_bytes = config.payload_bytes;
  in.snr_db = snr_db;
  in.max_tries = config.max_tries;
  in.retry_delay_ms = config.retry_delay_ms;

  MetricPrediction p;
  p.snr_db = snr_db;
  p.per = per_.Per(config.payload_bytes, snr_db);
  p.mean_tries = ntries_.MeanTriesTruncated(config.payload_bytes, snr_db,
                                            config.max_tries);
  p.service_time_ms = service_.MeanMs(in);
  p.utilization = delay_.Utilization(in, config.pkt_interval_ms);
  p.energy_uj_per_bit =
      energy_.MicrojoulesPerBit(config.payload_bytes, snr_db, config.pa_level);
  p.max_goodput_kbps = goodput_.MaxGoodputKbps(in);
  p.total_delay_ms =
      delay_.TotalDelayMs(in, config.pkt_interval_ms, config.queue_capacity);
  p.plr_radio = plr_.RadioLoss(config.payload_bytes, snr_db, config.max_tries);
  p.plr_queue = QueueLossEstimate(p.utilization);
  p.plr_total = CombineLoss(p.plr_queue, p.plr_radio);
  return p;
}

std::string ModelSet::SummaryTable() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "Table III: empirical models\n"
      "  E  energy     U_eng = E_tx*(l_0+l_D)/(l_D*(1-PER))          (Eq. 2)\n"
      "  -  PER        PER = %.4f * l_D * exp(%.3f * SNR)            (Eq. 3)\n"
      "  G  goodput    maxGoodput = l_D/T_service*(1-PLR_radio)      (Eq. 4)\n"
      "  D  delay      T_service per Eqs. (5)-(6); rho = T_s/T_pkt\n"
      "  -  N_tries    N = 1 + %.3f * l_D * exp(%.3f * SNR)          (Eq. 7)\n"
      "  L  radio loss PLR = (%.4f * l_D * exp(%.3f * SNR))^N        (Eq. 8)\n",
      per_.Coefficients().a, per_.Coefficients().b, ntries_.Coefficients().a,
      ntries_.Coefficients().b, plr_.Coefficients().a, plr_.Coefficients().b);
  return buf;
}

}  // namespace wsnlink::core::models
