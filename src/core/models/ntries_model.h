// Empirical transmission-count model — paper Eq. (7).
//
//   N_tries(l_D, SNR) = 1 + a * l_D * exp(b * SNR),  a = 0.02, b = -0.18
//
// The average number of transmissions needed to deliver a packet. The
// second term is the expected number of *extra* transmissions; equating it
// with the geometric-retry expectation p/(1-p) recovers the implied
// per-attempt failure probability p, which the truncated variants use when
// a finite N_maxTries caps the retry loop.
#pragma once

#include "core/models/constants.h"

namespace wsnlink::core::models {

/// Eq. (7) with pluggable coefficients (defaults to the paper's fit).
class NtriesModel {
 public:
  explicit NtriesModel(ScaledExpCoefficients coeff = kPaperNtriesFit);

  /// Paper Eq. (7): mean transmissions with unbounded retries.
  [[nodiscard]] double MeanTries(int payload_bytes, double snr_db) const;

  /// Mean transmissions when the MAC stops after `max_tries` attempts:
  /// E[min(G, N)] for the implied geometric attempt process.
  [[nodiscard]] double MeanTriesTruncated(int payload_bytes, double snr_db,
                                          int max_tries) const;

  /// FromExp variants: `exp_b_snr` must be exp(Coefficients().b * snr_db).
  /// The scalar entry points delegate here, so the batch path (which
  /// hoists the exp() into a vectorizable sweep) agrees bit for bit.
  [[nodiscard]] double MeanTriesFromExp(int payload_bytes,
                                        double exp_b_snr) const;
  [[nodiscard]] double MeanTriesTruncatedFromExp(int payload_bytes,
                                                 double exp_b_snr,
                                                 int max_tries) const;

  /// The per-attempt failure probability implied by Eq. (7):
  /// p = x / (1 + x) with x = a * l_D * exp(b * SNR). Always in [0, 1).
  [[nodiscard]] double ImpliedAttemptFailure(int payload_bytes,
                                             double snr_db) const;

  [[nodiscard]] const ScaledExpCoefficients& Coefficients() const noexcept {
    return coeff_;
  }

 private:
  ScaledExpCoefficients coeff_;
};

}  // namespace wsnlink::core::models
