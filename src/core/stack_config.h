// The multi-layer stack parameter configuration (the paper's Table I).
//
// Seven knobs spanning three layers:
//   PHY:  distance d (placement, not tunable at runtime), output power P_tx
//   MAC:  max transmissions N_maxTries, retry delay D_retry, queue size Q_max
//   App:  packet inter-arrival time T_pkt, payload size l_D
//
// A StackConfig is the unit the whole library revolves around: the
// experiment campaign sweeps them, the empirical models predict metrics for
// them, and the optimizer searches over them.
#pragma once

#include <string>

namespace wsnlink::core {

/// One full parameter configuration of the WSN link stack.
struct StackConfig {
  /// Sender-receiver distance in metres (PHY, placement).
  double distance_m = 20.0;
  /// CC2420 PA_LEVEL in {3, 7, 11, 15, 19, 23, 27, 31} (PHY, P_tx).
  int pa_level = 31;
  /// Maximum number of transmissions per packet, >= 1 (MAC, N_maxTries).
  int max_tries = 3;
  /// Delay before each retransmission in ms, >= 0 (MAC, D_retry).
  double retry_delay_ms = 0.0;
  /// Capacity of the queue feeding the MAC, >= 1 packets (MAC, Q_max).
  int queue_capacity = 1;
  /// Application packet inter-arrival time in ms, > 0 (App, T_pkt).
  double pkt_interval_ms = 100.0;
  /// Application payload size in bytes, 1..114 (App, l_D).
  int payload_bytes = 110;

  /// Throws std::invalid_argument describing the first violated bound.
  void Validate() const;

  /// Compact single-line rendering for logs and bench output.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const StackConfig&, const StackConfig&) = default;
};

}  // namespace wsnlink::core
