#include "core/fit/bootstrap.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/stats.h"

namespace wsnlink::core::fit {

std::optional<BootstrapFitResult> BootstrapScaledExponential(
    std::span<const ScaledExpSample> samples, util::Rng rng,
    const BootstrapOptions& options) {
  if (options.replicates < 2) {
    throw std::invalid_argument("Bootstrap: need at least 2 replicates");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    throw std::invalid_argument("Bootstrap: confidence must be in (0, 1)");
  }

  const auto point = FitScaledExponential(samples);
  if (!point) return std::nullopt;

  std::vector<double> a_values;
  std::vector<double> b_values;
  a_values.reserve(static_cast<std::size_t>(options.replicates));
  b_values.reserve(static_cast<std::size_t>(options.replicates));

  std::vector<ScaledExpSample> resampled(samples.size());
  for (int r = 0; r < options.replicates; ++r) {
    for (auto& slot : resampled) {
      const auto pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(samples.size()) - 1));
      slot = samples[pick];
    }
    const auto fit = FitScaledExponential(resampled);
    if (!fit) continue;
    a_values.push_back(fit->coefficients.a);
    b_values.push_back(fit->coefficients.b);
  }
  if (a_values.size() < 10) return std::nullopt;

  const double tail = (1.0 - options.confidence) / 2.0;
  BootstrapFitResult result;
  result.point = *point;
  result.a.lo = util::Quantile(a_values, tail);
  result.a.hi = util::Quantile(a_values, 1.0 - tail);
  result.b.lo = util::Quantile(b_values, tail);
  result.b.hi = util::Quantile(b_values, 1.0 - tail);
  result.successful_replicates = static_cast<int>(a_values.size());
  return result;
}

}  // namespace wsnlink::core::fit
