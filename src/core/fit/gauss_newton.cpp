#include "core/fit/gauss_newton.h"

#include <cmath>
#include <stdexcept>

namespace wsnlink::core::fit {

void SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-300) {
      throw std::runtime_error("SolveLinearSystem: singular matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i][k] * b[k];
    b[i] = acc / a[i][i];
  }
}

namespace {

double SumSquares(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (const double x : v) acc += x * x;
  return acc;
}

}  // namespace

GaussNewtonResult Minimize(const ResidualFn& residuals,
                           std::vector<double> initial,
                           std::size_t residual_count,
                           const GaussNewtonOptions& options) {
  if (initial.empty()) {
    throw std::invalid_argument("Minimize: at least one parameter required");
  }
  if (residual_count == 0) {
    throw std::invalid_argument("Minimize: at least one observation required");
  }
  const std::size_t np = initial.size();
  const std::size_t nr = residual_count;

  std::vector<double> r(nr);
  std::vector<double> r_perturbed(nr);
  std::vector<std::vector<double>> jacobian(nr, std::vector<double>(np));

  GaussNewtonResult result;
  result.params = std::move(initial);
  residuals(result.params, r);
  result.sse = SumSquares(r);

  double lambda = options.initial_lambda;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Numeric forward-difference Jacobian.
    for (std::size_t j = 0; j < np; ++j) {
      std::vector<double> perturbed = result.params;
      const double step =
          options.jacobian_step * (std::abs(perturbed[j]) + 1e-8);
      perturbed[j] += step;
      residuals(perturbed, r_perturbed);
      for (std::size_t i = 0; i < nr; ++i) {
        jacobian[i][j] = (r_perturbed[i] - r[i]) / step;
      }
    }

    // Normal equations (J^T J + lambda diag) dx = -J^T r.
    bool improved = false;
    for (int attempt = 0; attempt < 12 && !improved; ++attempt) {
      std::vector<std::vector<double>> jtj(np, std::vector<double>(np, 0.0));
      std::vector<double> neg_jtr(np, 0.0);
      for (std::size_t i = 0; i < nr; ++i) {
        for (std::size_t j = 0; j < np; ++j) {
          neg_jtr[j] -= jacobian[i][j] * r[i];
          for (std::size_t k = 0; k <= j; ++k) {
            jtj[j][k] += jacobian[i][j] * jacobian[i][k];
          }
        }
      }
      for (std::size_t j = 0; j < np; ++j) {
        for (std::size_t k = j + 1; k < np; ++k) jtj[j][k] = jtj[k][j];
        jtj[j][j] *= 1.0 + lambda;
        jtj[j][j] += 1e-12;  // keep strictly positive under zero columns
      }
      std::vector<double> step = neg_jtr;
      try {
        SolveLinearSystem(jtj, step);
      } catch (const std::runtime_error&) {
        lambda *= 10.0;
        continue;
      }

      std::vector<double> candidate = result.params;
      for (std::size_t j = 0; j < np; ++j) candidate[j] += step[j];
      residuals(candidate, r_perturbed);
      const double candidate_sse = SumSquares(r_perturbed);
      if (candidate_sse < result.sse) {
        const double relative_gain =
            (result.sse - candidate_sse) / (result.sse + 1e-300);
        result.params = std::move(candidate);
        std::swap(r, r_perturbed);
        result.sse = candidate_sse;
        lambda = std::max(lambda * 0.3, 1e-12);
        improved = true;
        if (relative_gain < options.tolerance) {
          result.converged = true;
          return result;
        }
      } else {
        lambda *= 10.0;
      }
    }
    if (!improved) {
      // Damping exhausted without progress: local minimum reached.
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace wsnlink::core::fit
