// Small dense nonlinear least-squares solver (Levenberg-Marquardt).
//
// The paper's models have two fitted parameters each, so a tiny dense
// implementation with numeric Jacobians is all that is needed: normal
// equations solved by Gaussian elimination with adaptive damping. Used by
// core/fit/exponential_fit.* to refine the log-linearised initial guess on
// the untransformed residuals (so large-PER points are not over-weighted by
// the log transform).
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace wsnlink::core::fit {

/// Options controlling the LM iteration.
struct GaussNewtonOptions {
  int max_iterations = 100;
  /// Stop when the relative SSE improvement falls below this.
  double tolerance = 1e-10;
  /// Initial Levenberg damping factor.
  double initial_lambda = 1e-3;
  /// Relative step for numeric (forward-difference) Jacobians.
  double jacobian_step = 1e-6;
};

/// Result of a solve.
struct GaussNewtonResult {
  std::vector<double> params;
  double sse = 0.0;       ///< final sum of squared residuals
  int iterations = 0;
  bool converged = false;
};

/// Residual function: given the parameter vector, fills `out` with one
/// residual per observation (out.size() is fixed across calls).
using ResidualFn =
    std::function<void(std::span<const double> params, std::span<double> out)>;

/// Minimises sum of squares of `residuals` starting from `initial`.
///
/// `residual_count` is the (fixed) number of observations. Throws
/// std::invalid_argument on empty parameters/observations.
[[nodiscard]] GaussNewtonResult Minimize(const ResidualFn& residuals,
                                         std::vector<double> initial,
                                         std::size_t residual_count,
                                         const GaussNewtonOptions& options = {});

/// Solves the square linear system A x = b in place (partial pivoting).
/// Throws std::runtime_error if A is singular. Exposed for tests.
void SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b);

}  // namespace wsnlink::core::fit
