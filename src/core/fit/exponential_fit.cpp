#include "core/fit/exponential_fit.h"

#include <cmath>
#include <stdexcept>

#include "core/fit/gauss_newton.h"
#include "util/stats.h"

namespace wsnlink::core::fit {

std::optional<ScaledExpFitResult> FitScaledExponential(
    std::span<const ScaledExpSample> samples) {
  // Log-linearised initial estimate over positive samples.
  std::vector<double> xs;
  std::vector<double> zs;
  for (const auto& s : samples) {
    if (s.value > 0.0 && s.payload_bytes > 0.0) {
      xs.push_back(s.snr_db);
      zs.push_back(std::log(s.value / s.payload_bytes));
    }
  }
  if (xs.size() < 3) return std::nullopt;
  const auto line = util::FitLine(xs, zs);
  if (!line) return std::nullopt;

  ScaledExpFitResult result;
  result.log_r_squared = line->r_squared;
  result.samples_used = static_cast<int>(xs.size());

  // Refine on untransformed residuals so that large-y points are not
  // over-weighted by the log transform, and zero-y points contribute.
  std::vector<ScaledExpSample> all(samples.begin(), samples.end());
  const ResidualFn residuals = [&all](std::span<const double> p,
                                      std::span<double> out) {
    const double a = p[0];
    const double b = p[1];
    for (std::size_t i = 0; i < all.size(); ++i) {
      out[i] = a * all[i].payload_bytes * std::exp(b * all[i].snr_db) -
               all[i].value;
    }
  };
  const auto refined =
      Minimize(residuals, {std::exp(line->intercept), line->slope}, all.size());

  result.coefficients.a = refined.params[0];
  result.coefficients.b = refined.params[1];
  result.rmse = std::sqrt(refined.sse / static_cast<double>(all.size()));
  return result;
}

std::optional<ExpFitResult> FitExponential(std::span<const double> xs,
                                           std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("FitExponential: size mismatch");
  }
  std::vector<double> lx;
  std::vector<double> lz;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (ys[i] > 0.0) {
      lx.push_back(xs[i]);
      lz.push_back(std::log(ys[i]));
    }
  }
  if (lx.size() < 3) return std::nullopt;
  const auto line = util::FitLine(lx, lz);
  if (!line) return std::nullopt;

  std::vector<double> all_x(xs.begin(), xs.end());
  std::vector<double> all_y(ys.begin(), ys.end());
  const ResidualFn residuals = [&all_x, &all_y](std::span<const double> p,
                                                std::span<double> out) {
    for (std::size_t i = 0; i < all_x.size(); ++i) {
      out[i] = p[0] * std::exp(p[1] * all_x[i]) - all_y[i];
    }
  };
  const auto refined = Minimize(
      residuals, {std::exp(line->intercept), line->slope}, all_x.size());

  ExpFitResult result;
  result.a = refined.params[0];
  result.b = refined.params[1];
  result.rmse = std::sqrt(refined.sse / static_cast<double>(all_x.size()));
  result.log_r_squared = line->r_squared;
  return result;
}

}  // namespace wsnlink::core::fit
