// Bootstrap confidence intervals for the scaled-exponential fits.
//
// The paper reports Eq. (7)'s coefficients "with 95% confidence level".
// A nonparametric bootstrap over the (payload, SNR, value) samples gives
// equivalent intervals for our refits: resample with replacement, refit,
// take percentile bounds of the coefficient distributions.
#pragma once

#include <optional>
#include <span>

#include "core/fit/exponential_fit.h"
#include "util/rng.h"

namespace wsnlink::core::fit {

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool Contains(double x) const noexcept {
    return x >= lo && x <= hi;
  }
  [[nodiscard]] double Width() const noexcept { return hi - lo; }
};

/// Point fit plus bootstrap intervals for both coefficients.
struct BootstrapFitResult {
  ScaledExpFitResult point;
  ConfidenceInterval a;
  ConfidenceInterval b;
  /// Bootstrap replicates that produced a valid fit.
  int successful_replicates = 0;
};

/// Options for the bootstrap.
struct BootstrapOptions {
  int replicates = 200;
  /// Two-sided confidence level in (0, 1), e.g. 0.95.
  double confidence = 0.95;
};

/// Bootstraps FitScaledExponential. Returns nullopt when the point fit
/// itself fails or fewer than 10 replicates succeed.
[[nodiscard]] std::optional<BootstrapFitResult> BootstrapScaledExponential(
    std::span<const ScaledExpSample> samples, util::Rng rng,
    const BootstrapOptions& options = {});

}  // namespace wsnlink::core::fit
