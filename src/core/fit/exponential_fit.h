// Fitters for the paper's scaled-exponential model family.
//
// All three empirical models (Eqs. 3, 7, 8) share the form
//
//   y = a * l_D * exp(b * SNR)
//
// Fitting proceeds the way the paper's analysis would: log-linearise
// (ln(y / l_D) = ln a + b * SNR, an ordinary least-squares line) for a
// robust initial estimate, then refine (a, b) with Levenberg-Marquardt on
// the untransformed residuals. Samples with y <= 0 (zero observed
// error/loss) carry no information in the log domain and are skipped there
// but still constrain the nonlinear refinement.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/models/constants.h"

namespace wsnlink::core::fit {

/// One observation for the scaled-exponential fit.
struct ScaledExpSample {
  double payload_bytes = 0.0;  ///< l_D
  double snr_db = 0.0;         ///< SNR
  double value = 0.0;          ///< observed y (PER / extra tries / loss)
};

/// Outcome of a scaled-exponential fit.
struct ScaledExpFitResult {
  models::ScaledExpCoefficients coefficients;
  /// RMSE of the refined fit in the value domain.
  double rmse = 0.0;
  /// R^2 of the log-linearised regression (quality of the exp-law shape).
  double log_r_squared = 0.0;
  int samples_used = 0;
};

/// Fits y = a * l_D * exp(b * SNR). Returns nullopt when fewer than 3
/// samples have y > 0 or when the SNR values are degenerate.
[[nodiscard]] std::optional<ScaledExpFitResult> FitScaledExponential(
    std::span<const ScaledExpSample> samples);

/// Fits a plain exponential y = a * exp(b * x) (used for the path-loss-free
/// single-payload slices in the figure benches). Same degeneracy rules.
struct ExpFitResult {
  double a = 0.0;
  double b = 0.0;
  double rmse = 0.0;
  double log_r_squared = 0.0;
};
[[nodiscard]] std::optional<ExpFitResult> FitExponential(
    std::span<const double> xs, std::span<const double> ys);

}  // namespace wsnlink::core::fit
