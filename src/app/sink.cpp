#include "app/sink.h"

namespace wsnlink::app {

void PacketSink::AttachTrace(const trace::TraceContext& ctx) {
  counters_ = ctx.counters;
  if (counters_ != nullptr) {
    id_rx_unique_ = counters_->Register("app.rx_unique");
    id_rx_duplicates_ = counters_->Register("app.rx_duplicates");
  }
}

void PacketSink::Reserve(std::size_t packet_count) {
  seen_->reserve(packet_count + 1);
  receptions_->reserve(packet_count);
}

void PacketSink::AttachStorage(std::vector<std::uint8_t>* seen,
                               std::vector<ReceptionRecord>* receptions) {
  seen_ = seen;
  receptions_ = receptions;
  seen_->clear();
  receptions_->clear();
}

bool PacketSink::MarkSeen(std::uint64_t packet_id) {
  if (packet_id >= seen_->size()) seen_->resize(packet_id + 1, 0);
  const bool fresh = (*seen_)[packet_id] == 0;
  (*seen_)[packet_id] = 1;
  if (fresh) ++unique_count_;
  return fresh;
}

void PacketSink::OnDelivery(const mac::DeliveryInfo& info) {
  ReceptionRecord record;
  record.packet_id = info.packet_id;
  record.payload_bytes = info.payload_bytes;
  record.received_at = info.received_at;
  record.rssi_dbm = info.rssi_dbm;
  record.snr_db = info.snr_db;
  record.lqi = info.lqi;

  const bool fresh = MarkSeen(info.packet_id);
  record.duplicate = !fresh;
  if (fresh) {
    unique_bytes_ += static_cast<std::uint64_t>(info.payload_bytes);
    last_at_ = info.received_at;
    if (counters_ != nullptr) counters_->Add(id_rx_unique_);
  } else {
    ++duplicates_;
    if (counters_ != nullptr) counters_->Add(id_rx_duplicates_);
  }

  rssi_stats_.Add(info.rssi_dbm);
  snr_stats_.Add(info.snr_db);
  lqi_stats_.Add(static_cast<double>(info.lqi));
  receptions_->push_back(record);
}

}  // namespace wsnlink::app
