// Application-layer traffic generation.
//
// The paper's sender application emits fixed-size packets at a fixed
// inter-arrival time T_pkt (the two application-layer knobs). A bulk mode
// (back-to-back packets, modelled by a tiny interval) serves the max-goodput
// and case-study experiments. Optional jitter turns the deterministic
// arrival process into a Poisson-like one for robustness studies.
#pragma once

#include <cstdint>
#include <functional>

#include "link/link_layer.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace wsnlink::app {

/// Traffic parameters.
struct TrafficParams {
  /// Packet inter-arrival time (T_pkt). Must be > 0.
  sim::Duration pkt_interval = 100 * sim::kMillisecond;
  /// Payload size per packet (l_D), in [1, 114].
  int payload_bytes = 110;
  /// Total packets to generate. Must be >= 1.
  int packet_count = 4500;
  /// 0 = deterministic arrivals (the paper's setup). > 0 draws each gap
  /// from an exponential with mean pkt_interval (Poisson arrivals).
  bool poisson = false;
};

/// Periodic (or Poisson) packet source feeding a link layer.
class TrafficGenerator {
 public:
  /// Collaborators must outlive the generator.
  TrafficGenerator(sim::Simulator& simulator, link::LinkLayer& link,
                   TrafficParams params, util::Rng rng);

  /// Schedules the first arrival (at t = Now). Call once.
  void Start();

  /// Attaches observability sinks (kPacketGenerated events and the
  /// "app.packets_generated" counter). Call before Start().
  void AttachTrace(const trace::TraceContext& ctx);

  /// Packets generated so far.
  [[nodiscard]] int Generated() const noexcept { return generated_; }

  /// True once all packets have been generated.
  [[nodiscard]] bool Done() const noexcept {
    return generated_ >= params_.packet_count;
  }

  /// First generated packet id (ids are sequential from here).
  [[nodiscard]] std::uint64_t FirstPacketId() const noexcept { return 1; }

  /// Arrival-process state for speculative save/restore (the Poisson gap
  /// RNG rewinds with the counters).
  struct State {
    util::Rng rng;
    int generated = 0;
    std::uint64_t next_id = 1;
  };

  void SaveState(State& out) const {
    out.rng = rng_;
    out.generated = generated_;
    out.next_id = next_id_;
  }

  void RestoreState(const State& state) {
    rng_ = state.rng;
    generated_ = state.generated;
    next_id_ = state.next_id;
  }

 private:
  void Emit();

  sim::Simulator& sim_;
  link::LinkLayer& link_;
  // wsnstatic:transient(params_): traffic configuration fixed at construction; never mutated during a run
  TrafficParams params_;
  util::Rng rng_;
  int generated_ = 0;
  std::uint64_t next_id_ = 1;

  // Observability (null = off).
  // wsnstatic:transient(tracer_, counters_, node_, id_generated_): trace wiring fixed at attach time; counter rollback is handled by the caller, not the snapshot
  trace::Tracer* tracer_ = nullptr;
  trace::CounterRegistry* counters_ = nullptr;
  std::int32_t node_ = 0;
  trace::CounterRegistry::Id id_generated_ = 0;
};

}  // namespace wsnlink::app
