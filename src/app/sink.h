// Receiver-side application sink.
//
// Counts unique deliveries (suppressing duplicates caused by lost ACKs),
// accumulates goodput bytes and records per-reception channel readings —
// the receiver mote's half of the paper's per-packet logging.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/csma_mac.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace wsnlink::app {

/// One reception entry at the sink (duplicates included, flagged).
struct ReceptionRecord {
  std::uint64_t packet_id = 0;
  int payload_bytes = 0;
  sim::Time received_at = 0;
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  int lqi = 0;
  bool duplicate = false;
};

/// Collects deliveries; wire its OnDelivery into the link layer.
class PacketSink {
 public:
  /// Handles one decoded copy.
  void OnDelivery(const mac::DeliveryInfo& info);

  /// Attaches observability sinks (the "app.rx_unique" / "app.rx_duplicates"
  /// counters; the sink emits no events of its own — deliveries are traced
  /// at the link layer).
  void AttachTrace(const trace::TraceContext& ctx);

  /// Pre-sizes the reception log and the duplicate-suppression table (ids
  /// are sequential per run, so the caller knows both bounds up front).
  void Reserve(std::size_t packet_count);

  /// Redirects the sink's growable state into caller-owned vectors (cleared
  /// here, capacity kept) so a reused sweep worker fills warm heap blocks.
  /// Call before Reserve; the pointees must outlive the sink.
  void AttachStorage(std::vector<std::uint8_t>* seen,
                     std::vector<ReceptionRecord>* receptions);

  /// Unique packets received.
  [[nodiscard]] std::size_t UniqueCount() const noexcept {
    return unique_count_;
  }
  /// Duplicate copies received (retransmissions of already-received data).
  [[nodiscard]] std::uint64_t DuplicateCount() const noexcept {
    return duplicates_;
  }
  /// Total unique payload bytes delivered (the goodput numerator).
  [[nodiscard]] std::uint64_t UniquePayloadBytes() const noexcept {
    return unique_bytes_;
  }
  /// Time of the last unique delivery (0 if none).
  [[nodiscard]] sim::Time LastDeliveryAt() const noexcept { return last_at_; }

  [[nodiscard]] const std::vector<ReceptionRecord>& Receptions() const noexcept {
    return *receptions_;
  }

  /// RSSI / SNR / LQI statistics over all decoded copies.
  [[nodiscard]] const util::RunningStats& RssiStats() const noexcept {
    return rssi_stats_;
  }
  [[nodiscard]] const util::RunningStats& SnrStats() const noexcept {
    return snr_stats_;
  }
  [[nodiscard]] const util::RunningStats& LqiStats() const noexcept {
    return lqi_stats_;
  }

  /// Tallies plus the reception-log high-water mark for speculative
  /// save/restore. The dense seen-table is not copied: rolling back walks
  /// the reception tail and un-marks exactly the ids first seen after the
  /// snapshot, which costs O(rolled-back receptions) instead of O(run).
  struct State {
    std::size_t receptions_size = 0;
    std::size_t unique_count = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t unique_bytes = 0;
    sim::Time last_at = 0;
    util::RunningStats rssi_stats;
    util::RunningStats snr_stats;
    util::RunningStats lqi_stats;
  };

  void SaveState(State& out) const {
    out.receptions_size = receptions_->size();
    out.unique_count = unique_count_;
    out.duplicates = duplicates_;
    out.unique_bytes = unique_bytes_;
    out.last_at = last_at_;
    out.rssi_stats = rssi_stats_;
    out.snr_stats = snr_stats_;
    out.lqi_stats = lqi_stats_;
  }

  void RestoreState(const State& state) {
    for (std::size_t i = state.receptions_size; i < receptions_->size();
         ++i) {
      const ReceptionRecord& record = (*receptions_)[i];
      if (!record.duplicate) (*seen_)[record.packet_id] = 0;
    }
    receptions_->resize(state.receptions_size);
    unique_count_ = state.unique_count;
    duplicates_ = state.duplicates;
    unique_bytes_ = state.unique_bytes;
    last_at_ = state.last_at;
    rssi_stats_ = state.rssi_stats;
    snr_stats_ = state.snr_stats;
    lqi_stats_ = state.lqi_stats;
  }

 private:
  /// Duplicate suppression: packet ids are small sequential integers, so a
  /// dense byte-per-id table beats a hash set on the delivery hot path.
  [[nodiscard]] bool MarkSeen(std::uint64_t packet_id);
  // wsnstatic:transient(own_seen_, own_receptions_): default backing stores; live state sits behind seen_/receptions_, which Save/Restore round-trip
  std::vector<std::uint8_t> own_seen_;
  std::vector<ReceptionRecord> own_receptions_;
  // wsnstatic:transient(seen_): RestoreState rewrites the pointee in place; the pointer itself is construction-time wiring
  std::vector<std::uint8_t>* seen_ = &own_seen_;
  std::vector<ReceptionRecord>* receptions_ = &own_receptions_;
  std::size_t unique_count_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t unique_bytes_ = 0;
  sim::Time last_at_ = 0;
  util::RunningStats rssi_stats_;
  util::RunningStats snr_stats_;
  util::RunningStats lqi_stats_;

  // Observability (null = off).
  // wsnstatic:transient(counters_, id_rx_unique_, id_rx_duplicates_): trace wiring fixed at attach time; counter rollback is handled by the caller, not the snapshot
  trace::CounterRegistry* counters_ = nullptr;
  trace::CounterRegistry::Id id_rx_unique_ = 0;
  trace::CounterRegistry::Id id_rx_duplicates_ = 0;
};

}  // namespace wsnlink::app
