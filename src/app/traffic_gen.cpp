#include "app/traffic_gen.h"

#include <stdexcept>

#include "phy/frame.h"

namespace wsnlink::app {

TrafficGenerator::TrafficGenerator(sim::Simulator& simulator,
                                   link::LinkLayer& link, TrafficParams params,
                                   util::Rng rng)
    : sim_(simulator), link_(link), params_(params), rng_(rng) {
  if (params_.pkt_interval <= 0) {
    throw std::invalid_argument("TrafficGenerator: interval must be > 0");
  }
  if (params_.packet_count < 1) {
    throw std::invalid_argument("TrafficGenerator: packet count must be >= 1");
  }
  phy::ValidatePayloadSize(params_.payload_bytes);
}

void TrafficGenerator::AttachTrace(const trace::TraceContext& ctx) {
  tracer_ = ctx.tracer;
  counters_ = ctx.counters;
  node_ = ctx.node;
  if (counters_ != nullptr) {
    id_generated_ = counters_->Register("app.packets_generated");
  }
}

void TrafficGenerator::Start() {
  sim_.Schedule(0, [this] { Emit(); });
}

void TrafficGenerator::Emit() {
  if (counters_ != nullptr) counters_->Add(id_generated_);
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kPacketGenerated,
                   trace::Layer::kApp, next_id_, params_.payload_bytes, 0,
                   0.0, node_});
  }
  link_.Accept(next_id_++, params_.payload_bytes);
  ++generated_;
  if (Done()) return;

  sim::Duration gap = params_.pkt_interval;
  if (params_.poisson) {
    gap = sim::FromSeconds(
        rng_.Exponential(sim::ToSeconds(params_.pkt_interval)));
    if (gap < 1) gap = 1;
  }
  sim_.Schedule(gap, [this] { Emit(); });
}

}  // namespace wsnlink::app
