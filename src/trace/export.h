// Trace exporters: Chrome trace_event JSON and flat CSV.
//
// The JSON form loads directly in chrome://tracing or https://ui.perfetto.dev
// — one row (tid) per stack layer, instant events for point occurrences,
// async begin/end spans for each packet's service interval, and counter
// totals as trace_event counter samples. The CSV form is the same stream as
// a flat table for offline analysis (pandas, gnuplot).
#pragma once

#include <string>
#include <vector>

#include "trace/counters.h"
#include "trace/trace.h"

namespace wsnlink::trace {

/// Renders the event stream as a Chrome trace_event JSON document
/// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
/// `counters` (optional) is appended as counter samples at the last event
/// timestamp.
[[nodiscard]] std::string ChromeTraceJson(
    const std::vector<TraceEvent>& events,
    const std::vector<CounterSample>& counters = {});

/// Writes ChromeTraceJson to `path`. Throws std::runtime_error on I/O
/// failure.
void WriteChromeTraceJson(const std::string& path,
                          const std::vector<TraceEvent>& events,
                          const std::vector<CounterSample>& counters = {});

/// Column headers of the CSV trace schema.
[[nodiscard]] std::vector<std::string> TraceCsvHeaders();

/// Renders the event stream as CSV (header + one row per event).
[[nodiscard]] std::string TraceCsv(const std::vector<TraceEvent>& events);

/// Writes TraceCsv to `path`. Throws std::runtime_error on I/O failure.
void WriteTraceCsv(const std::string& path,
                   const std::vector<TraceEvent>& events);

}  // namespace wsnlink::trace
