#include "trace/counters.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>

namespace wsnlink::trace {

std::string_view InternCounterName(std::string_view name) {
  // std::set nodes are address-stable, so views into the stored strings
  // survive every later insertion. Function-local statics keep the table
  // alive for the whole process; registries and samples are destroyed
  // earlier, so their views never dangle.
  // wsnstatic:allow(lp-isolation): the intern table is append-only and mutex-guarded; interned views are immutable, so rollback never observes a change
  static std::mutex mutex;
  static std::set<std::string, std::less<>> table;
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = table.find(name);
  if (it == table.end()) it = table.emplace(name).first;
  return *it;
}

CounterRegistry::Id CounterRegistry::Register(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    const Id id = it->second;
    if (epochs_[id] != epoch_) {
      // Revived on a reused registry: this run starts the counter at zero.
      epochs_[id] = epoch_;
      values_[id] = 0;
    }
    return id;
  }
  const Id id = names_.size();
  names_.push_back(InternCounterName(name));
  values_.push_back(0);
  epochs_.push_back(epoch_);
  index_.emplace(names_.back(), id);
  return id;
}

void CounterRegistry::RestoreValues(const std::vector<std::uint64_t>& saved) {
  if (saved.size() != values_.size()) {
    throw std::logic_error(
        "CounterRegistry::RestoreValues: counters registered since the "
        "save (wire every layer before the run starts)");
  }
  std::copy(saved.begin(), saved.end(), values_.begin());
}

std::uint64_t CounterRegistry::Value(std::string_view name) const noexcept {
  const auto it = index_.find(name);
  if (it == index_.end() || epochs_[it->second] != epoch_) return 0;
  return values_[it->second];
}

std::size_t CounterRegistry::Size() const noexcept {
  std::size_t live = 0;
  for (const std::uint64_t epoch : epochs_) live += epoch == epoch_ ? 1 : 0;
  return live;
}

std::vector<CounterSample> CounterRegistry::Snapshot() const {
  std::vector<CounterSample> out;
  out.reserve(Size());
  // index_ is already name-ordered.
  for (const auto& [name, id] : index_) {
    if (epochs_[id] != epoch_) continue;
    out.push_back(CounterSample{name, values_[id]});
  }
  return out;
}

std::vector<CounterSample> MergeCounters(
    const std::vector<std::vector<CounterSample>>& snapshots) {
  std::map<std::string_view, std::uint64_t, std::less<>> total;
  for (const auto& snapshot : snapshots) {
    for (const auto& sample : snapshot) total[sample.name] += sample.value;
  }
  std::vector<CounterSample> out;
  out.reserve(total.size());
  for (const auto& [name, value] : total) {
    out.push_back(CounterSample{name, value});
  }
  return out;
}

void AddSample(std::vector<CounterSample>& samples, std::string_view name,
               std::uint64_t value) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const CounterSample& s, std::string_view n) { return s.name < n; });
  if (it != samples.end() && it->name == name) {
    it->value += value;
    return;
  }
  samples.insert(it, CounterSample{InternCounterName(name), value});
}

std::vector<CounterSample> SnapshotMerged(const CounterRegistry& a,
                                          const CounterRegistry& b) {
  std::vector<CounterSample> out;
  out.reserve(a.Size() + b.Size());
  auto ita = a.index_.begin();
  auto itb = b.index_.begin();
  const auto live_a = [&] {
    while (ita != a.index_.end() && a.epochs_[ita->second] != a.epoch_) ++ita;
    return ita != a.index_.end();
  };
  const auto live_b = [&] {
    while (itb != b.index_.end() && b.epochs_[itb->second] != b.epoch_) ++itb;
    return itb != b.index_.end();
  };
  while (true) {
    const bool has_a = live_a();
    const bool has_b = live_b();
    if (!has_a && !has_b) break;
    if (has_a && (!has_b || ita->first < itb->first)) {
      out.push_back(CounterSample{ita->first, a.values_[ita->second]});
      ++ita;
    } else if (has_b && (!has_a || itb->first < ita->first)) {
      out.push_back(CounterSample{itb->first, b.values_[itb->second]});
      ++itb;
    } else {
      out.push_back(CounterSample{
          ita->first, a.values_[ita->second] + b.values_[itb->second]});
      ++ita;
      ++itb;
    }
  }
  return out;
}

}  // namespace wsnlink::trace
