#include "trace/counters.h"

#include <algorithm>

namespace wsnlink::trace {

CounterRegistry::Id CounterRegistry::Register(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const Id id = names_.size();
  names_.emplace_back(name);
  values_.push_back(0);
  index_.emplace(names_.back(), id);
  return id;
}

std::uint64_t CounterRegistry::Value(std::string_view name) const noexcept {
  const auto it = index_.find(name);
  return it == index_.end() ? 0 : values_[it->second];
}

std::vector<CounterSample> CounterRegistry::Snapshot() const {
  std::vector<CounterSample> out;
  out.reserve(names_.size());
  // index_ is already name-ordered.
  for (const auto& [name, id] : index_) {
    out.push_back(CounterSample{name, values_[id]});
  }
  return out;
}

std::vector<CounterSample> MergeCounters(
    const std::vector<std::vector<CounterSample>>& snapshots) {
  std::map<std::string, std::uint64_t> total;
  for (const auto& snapshot : snapshots) {
    for (const auto& sample : snapshot) total[sample.name] += sample.value;
  }
  std::vector<CounterSample> out;
  out.reserve(total.size());
  for (const auto& [name, value] : total) {
    out.push_back(CounterSample{name, value});
  }
  return out;
}

void AddSample(std::vector<CounterSample>& samples, std::string_view name,
               std::uint64_t value) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const CounterSample& s, std::string_view n) { return s.name < n; });
  if (it != samples.end() && it->name == name) {
    it->value += value;
    return;
  }
  samples.insert(it, CounterSample{std::string(name), value});
}

}  // namespace wsnlink::trace
