#include "trace/trace.h"

#include <stdexcept>

namespace wsnlink::trace {

const char* EventTypeName(EventType type) noexcept {
  switch (type) {
    case EventType::kPacketGenerated: return "PacketGenerated";
    case EventType::kPacketArrival: return "PacketArrival";
    case EventType::kQueueEnqueue: return "QueueEnqueue";
    case EventType::kQueueDrop: return "QueueDrop";
    case EventType::kServiceStart: return "ServiceStart";
    case EventType::kPacketCompleted: return "PacketCompleted";
    case EventType::kPacketDelivered: return "PacketDelivered";
    case EventType::kTxAttemptStart: return "TxAttemptStart";
    case EventType::kTxAttemptResult: return "TxAttemptResult";
    case EventType::kAckReceived: return "AckReceived";
    case EventType::kCcaBusy: return "CcaBusy";
    case EventType::kRadioState: return "RadioState";
    case EventType::kLplTrainStart: return "LplTrainStart";
    case EventType::kLplCopySent: return "LplCopySent";
    case EventType::kLplReceiverWake: return "LplReceiverWake";
  }
  return "Unknown";
}

const char* LayerName(Layer layer) noexcept {
  switch (layer) {
    case Layer::kSim: return "sim";
    case Layer::kPhy: return "phy";
    case Layer::kMac: return "mac";
    case Layer::kLink: return "link";
    case Layer::kApp: return "app";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity) {
  if (capacity < 1) {
    throw std::invalid_argument("Tracer: capacity must be >= 1");
  }
  ring_.resize(capacity);
}

std::vector<TraceEvent> Tracer::Events() const {
  const std::size_t capacity = ring_.size();
  const std::size_t retained =
      emitted_ < capacity ? static_cast<std::size_t>(emitted_) : capacity;
  std::vector<TraceEvent> out;
  out.reserve(retained);
  // Oldest retained event sits at emitted_ % capacity once wrapped.
  const std::size_t start =
      emitted_ <= capacity ? 0 : static_cast<std::size_t>(emitted_ % capacity);
  for (std::size_t i = 0; i < retained; ++i) {
    out.push_back(ring_[(start + i) % capacity]);
  }
  return out;
}

}  // namespace wsnlink::trace
