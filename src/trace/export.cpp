#include "trace/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace wsnlink::trace {

namespace {

/// Formats a double compactly and locale-independently ("%.9g": enough to
/// round-trip the RSSI/SNR readings the events carry).
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string FormatInt(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string FormatUint(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// The common "pid":<node+1>,"tid":<layer> tail shared by every trace
/// record. Each node renders as its own process so chrome://tracing groups
/// the per-node layer rows; node 0 keeps the historical pid 1.
void AppendPidTid(std::string& out, Layer layer, std::int32_t node = 0) {
  out += "\"pid\":";
  out += FormatInt(static_cast<std::int64_t>(node) + 1);
  out += ",\"tid\":";
  out += FormatInt(static_cast<std::int64_t>(layer));
}

void AppendEventArgs(std::string& out, const TraceEvent& e) {
  out += "\"args\":{\"packet\":";
  out += FormatUint(e.packet_id);
  out += ",\"arg0\":";
  out += FormatInt(e.arg0);
  out += ",\"arg1\":";
  out += FormatInt(e.arg1);
  out += ",\"value\":";
  out += FormatDouble(e.value);
  out += "}";
}

void WriteFileOrThrow(const std::string& path, const std::string& contents,
                      const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error(std::string(what) + ": cannot open " + path);
  }
  out << contents;
  if (!out) {
    throw std::runtime_error(std::string(what) + ": write failed for " + path);
  }
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::vector<CounterSample>& counters) {
  std::string out;
  out.reserve(events.size() * 120 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Metadata: one process row per node present in the stream (node 0 is
  // always named so empty traces keep the historical preamble), one thread
  // row per layer under node 0.
  std::int32_t max_node = 0;
  for (const TraceEvent& e : events) {
    if (e.node > max_node) max_node = e.node;
  }
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wsnlink\"}}";
  for (std::int32_t node = 1; node <= max_node; ++node) {
    out += ",\n{\"ph\":\"M\",\"pid\":";
    out += FormatInt(static_cast<std::int64_t>(node) + 1);
    out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"node-";
    out += FormatInt(node);
    out += "\"}}";
  }
  for (const Layer layer : {Layer::kSim, Layer::kPhy, Layer::kMac, Layer::kLink,
                            Layer::kApp}) {
    out += ",\n{\"ph\":\"M\",";
    AppendPidTid(out, layer);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    out += LayerName(layer);
    out += "\"}}";
  }

  sim::Time last_ts = 0;
  for (const TraceEvent& e : events) {
    if (e.at > last_ts) last_ts = e.at;
    // Service intervals render as per-packet async spans so chrome://tracing
    // shows one lane per in-flight packet; everything else is an instant.
    if (e.type == EventType::kServiceStart ||
        e.type == EventType::kPacketCompleted) {
      const bool begin = e.type == EventType::kServiceStart;
      out += ",\n{\"ph\":\"";
      out += begin ? 'b' : 'e';
      out += "\",\"cat\":\"packet\",\"id\":";
      out += FormatUint(e.packet_id);
      out += ",\"name\":\"service\",\"ts\":";
      out += FormatInt(e.at);
      out += ",";
      AppendPidTid(out, e.layer, e.node);
      out += ",";
      AppendEventArgs(out, e);
      out += "}";
      continue;
    }
    out += ",\n{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
    out += EventTypeName(e.type);
    out += "\",\"ts\":";
    out += FormatInt(e.at);
    out += ",";
    AppendPidTid(out, e.layer, e.node);
    out += ",";
    AppendEventArgs(out, e);
    out += "}";
  }

  // Final counter values as trace_event counter samples at the last
  // timestamp (one sample per counter: the registry keeps totals, not a
  // time series).
  for (const CounterSample& c : counters) {
    out += ",\n{\"ph\":\"C\",\"pid\":1,\"name\":\"";
    out += c.name;
    out += "\",\"ts\":";
    out += FormatInt(last_ts);
    out += ",\"args\":{\"value\":";
    out += FormatUint(c.value);
    out += "}}";
  }

  out += "\n]}\n";
  return out;
}

void WriteChromeTraceJson(const std::string& path,
                          const std::vector<TraceEvent>& events,
                          const std::vector<CounterSample>& counters) {
  WriteFileOrThrow(path, ChromeTraceJson(events, counters),
                   "WriteChromeTraceJson");
}

std::vector<std::string> TraceCsvHeaders() {
  return {"t_us", "layer", "event", "packet_id", "arg0", "arg1", "value",
          "node"};
}

std::string TraceCsv(const std::vector<TraceEvent>& events) {
  std::string out = "t_us,layer,event,packet_id,arg0,arg1,value,node\n";
  out.reserve(out.size() + events.size() * 64);
  for (const TraceEvent& e : events) {
    out += FormatInt(e.at);
    out += ',';
    out += LayerName(e.layer);
    out += ',';
    out += EventTypeName(e.type);
    out += ',';
    out += FormatUint(e.packet_id);
    out += ',';
    out += FormatInt(e.arg0);
    out += ',';
    out += FormatInt(e.arg1);
    out += ',';
    out += FormatDouble(e.value);
    out += ',';
    out += FormatInt(e.node);
    out += '\n';
  }
  return out;
}

void WriteTraceCsv(const std::string& path,
                   const std::vector<TraceEvent>& events) {
  WriteFileOrThrow(path, TraceCsv(events), "WriteTraceCsv");
}

}  // namespace wsnlink::trace
