// Event tracing: typed lifecycle events in a bounded ring buffer.
//
// The paper's methodology is built on raw per-packet logs (RSSI, attempt
// counts, queue sizes — Sec. II-C); the end-of-run PacketRecord summarises
// them but hides the in-between. A Tracer captures the full event stream of
// one run — packet arrivals, queue transitions, transmission attempts, CCA
// busy verdicts, ACKs, LPL trains and radio state changes — so a single run
// can be replayed, invariant-checked, or loaded into chrome://tracing.
//
// Design constraints:
//  * Near-free when disabled: every layer holds a nullable Tracer pointer
//    and the off path is a single branch. No allocation, no formatting.
//  * Bounded: a fixed-capacity ring buffer; when full the oldest events are
//    overwritten and counted, never reallocated mid-run (the emit path must
//    not perturb timing-sensitive benchmarks).
//  * Deterministic: events carry simulated time only. Two runs with the
//    same seed produce byte-identical event streams regardless of host,
//    wall clock, or sweep thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "trace/counters.h"

namespace wsnlink::trace {

/// Which stack layer emitted an event (also the chrome://tracing row).
enum class Layer : std::uint8_t {
  kSim = 0,
  kPhy = 1,
  kMac = 2,
  kLink = 3,
  kApp = 4,
};

/// Sender radio state for kRadioState events (arg0).
enum class RadioState : std::uint8_t {
  kIdle = 0,    ///< not serving a packet
  kListen = 1,  ///< RX: backoff, CCA, ACK wait
  kTx = 2,      ///< frame on air
};

/// Typed lifecycle events. The arg0/arg1/value payload per type is
/// documented in docs/TRACING.md; the short version lives next to each
/// enumerator.
enum class EventType : std::uint8_t {
  /// App handed a packet to the stack. arg0 = payload bytes.
  kPacketGenerated = 0,
  /// Link layer saw the arrival. arg0 = queue occupancy before the offer.
  kPacketArrival = 1,
  /// Packet admitted to the transmit queue. arg0 = occupancy after.
  kQueueEnqueue = 2,
  /// Packet dropped, queue full. arg0 = occupancy (== capacity).
  kQueueDrop = 3,
  /// MAC service began (SPI load start). arg0 = occupancy incl. in-service.
  kServiceStart = 4,
  /// MAC finished with the packet. arg0 = tries, arg1 = flags
  /// (bit0 acked, bit1 delivered).
  kPacketCompleted = 5,
  /// Receiver decoded a copy. arg0 = attempt index, value = RSSI dBm.
  kPacketDelivered = 6,
  /// Data frame started radiating. arg0 = attempt index, arg1 = frame bytes.
  kTxAttemptStart = 7,
  /// Attempt outcome known. arg0 = attempt index, arg1 = flags
  /// (bit0 data decoded, bit1 acked), value = SNR dB.
  kTxAttemptResult = 8,
  /// ACK decoded by the sender. arg0 = attempt index.
  kAckReceived = 9,
  /// CCA found the channel busy. arg0 = congestion backoffs left.
  kCcaBusy = 10,
  /// Sender radio state change. arg0 = RadioState.
  kRadioState = 11,
  /// LPL: a packet train (wakeup-covering copy burst) began.
  /// arg0 = train index (1-based).
  kLplTrainStart = 12,
  /// LPL: one copy of the frame radiated. arg0 = train index,
  /// arg1 = copies so far for this packet.
  kLplCopySent = 13,
  /// LPL: the duty-cycled receiver decoded a copy and latched awake.
  /// arg0 = train index.
  kLplReceiverWake = 14,
};

/// Number of EventType enumerators (for tables indexed by type).
inline constexpr std::size_t kEventTypeCount = 15;

/// Stable display name of an event type (e.g. "TxAttemptStart").
[[nodiscard]] const char* EventTypeName(EventType type) noexcept;

/// Stable display name of a layer (e.g. "mac").
[[nodiscard]] const char* LayerName(Layer layer) noexcept;

/// One traced event. Plain data; meaning of arg0/arg1/value depends on
/// `type` (see EventType). Comparable so determinism tests can require
/// bit-identical streams.
struct TraceEvent {
  sim::Time at = 0;  ///< simulated microseconds
  EventType type = EventType::kPacketGenerated;
  Layer layer = Layer::kSim;
  std::uint64_t packet_id = 0;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  double value = 0.0;
  /// Which node's stack emitted the event (0 in single-link runs). Last
  /// member so layers that predate multi-node can keep their 7-field
  /// aggregate literals; the scoped value is stamped by the emitting layer
  /// from its TraceContext.
  std::int32_t node = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Flag bits of kPacketCompleted.arg1 and kTxAttemptResult.arg1.
inline constexpr std::int64_t kFlagAcked = 1;      // kPacketCompleted bit0
inline constexpr std::int64_t kFlagDelivered = 2;  // kPacketCompleted bit1
inline constexpr std::int64_t kFlagDataReceived = 1;  // kTxAttemptResult bit0
inline constexpr std::int64_t kFlagAckReceived = 2;   // kTxAttemptResult bit1

/// Bounded ring buffer of TraceEvents for one run.
///
/// Not thread-safe: one Tracer belongs to one simulation run (runs in a
/// sweep are embarrassingly parallel and each owns its Tracer, which is
/// what keeps multi-threaded sweeps deterministic).
class Tracer {
 public:
  /// Default capacity comfortably holds a 4500-packet run (~15 events per
  /// packet at moderate loss) without overwriting.
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  /// Requires capacity >= 1.
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Records one event; O(1), overwrites the oldest event when full.
  void Emit(const TraceEvent& event) noexcept {
    ring_[static_cast<std::size_t>(emitted_ % ring_.size())] = event;
    ++emitted_;
  }

  /// Events in emission order (chronological: simulated time is
  /// monotonic). Copies out of the ring; call once after the run.
  [[nodiscard]] std::vector<TraceEvent> Events() const;

  /// Total events emitted, including overwritten ones.
  [[nodiscard]] std::uint64_t EmittedCount() const noexcept { return emitted_; }

  /// Events lost to ring overwrite (EmittedCount() - retained).
  [[nodiscard]] std::uint64_t DroppedCount() const noexcept {
    return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
  }

  [[nodiscard]] std::size_t Capacity() const noexcept { return ring_.size(); }

  /// Forgets all recorded events (capacity unchanged).
  void Clear() noexcept { emitted_ = 0; }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t emitted_ = 0;
};

/// The pair of observability sinks a layer can be attached to. Either
/// pointer may be null: a null tracer skips event emission, a null registry
/// skips counting. Cheap to copy; the pointees must outlive the run.
struct TraceContext {
  Tracer* tracer = nullptr;
  CounterRegistry* counters = nullptr;
  /// Node id stamped into emitted events (multi-node runs attach one
  /// context per stack; single-link runs keep the default 0).
  std::int32_t node = 0;

  [[nodiscard]] bool Active() const noexcept {
    return tracer != nullptr || counters != nullptr;
  }
};

}  // namespace wsnlink::trace
