// Named monotonic counters, one registry per run.
//
// Each stack layer registers its counters by name ("mac.tx_attempts",
// "link.queue_drops", ...) and bumps them through a stable integer id, so
// the hot path is an array increment behind a null check. Snapshots are
// sorted by name, which makes them comparable across runs and mergeable
// across a sweep (the campaign's aggregated roll-up).
//
// Names are interned into process-lifetime storage and samples carry
// string_views into it: snapshotting a registry copies no characters and
// performs exactly one allocation (the sample vector), and samples stay
// valid after the registry that produced them is gone — both load-bearing
// for the zero-alloc sweep hot path, where worker-local registries are
// reused across configurations via BeginRun().
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

namespace wsnlink::trace {

/// Interns `name` into immortal storage, returning a view that never
/// dangles. Thread-safe; one allocation per unique name process-wide.
[[nodiscard]] std::string_view InternCounterName(std::string_view name);

/// One counter reading in a snapshot. The name views interned storage (or
/// a string literal in tests) and is valid for the process lifetime.
struct CounterSample {
  std::string_view name;
  std::uint64_t value = 0;

  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

/// Registry of named monotonic counters. Not thread-safe: one registry
/// belongs to one simulation run.
///
/// A registry can be REUSED across runs: BeginRun() marks every counter
/// stale without forgetting it, so the next run's Register() calls revive
/// exactly the counters that run uses (at zero) with pure map lookups —
/// no allocation — and Snapshot() reports only the revived set.
class CounterRegistry {
 public:
  using Id = std::size_t;

  /// Returns the id for `name`, creating the counter (at zero) on first
  /// use. Registering the same name again returns the same id; after a
  /// BeginRun() it also revives the counter at zero. Takes a view (with a
  /// transparent index) so registering literals each run allocates nothing
  /// once the name exists.
  Id Register(std::string_view name);

  /// Adds `delta` to a registered counter. Requires a valid id.
  void Add(Id id, std::uint64_t delta = 1) noexcept { values_[id] += delta; }

  /// Current value by name; 0 for unregistered (or stale) names.
  [[nodiscard]] std::uint64_t Value(std::string_view name) const noexcept;

  /// Number of live (current-epoch) counters.
  [[nodiscard]] std::size_t Size() const noexcept;

  /// All live counters, sorted by name. Exactly one allocation.
  [[nodiscard]] std::vector<CounterSample> Snapshot() const;

  /// Starts a new run on a reused registry: every registered counter
  /// becomes stale (excluded from Snapshot/Value) until re-registered,
  /// which resets it to zero. Fresh registries start with run 0 live, so
  /// single-run use never needs to call this.
  void BeginRun() noexcept { ++epoch_; }

  /// Copies every counter value into `out` (ids and names unchanged) so a
  /// speculative execution can be rolled back without its increments
  /// leaking into the aggregates. Registration happens only during stack
  /// wiring (before the run), so the id set is stable across a
  /// save/restore pair; RestoreValues enforces that.
  void SaveValues(std::vector<std::uint64_t>& out) const {
    out.assign(values_.begin(), values_.end());
  }

  /// Rolls every counter back to a SaveValues() image. Throws
  /// std::logic_error if counters were registered since the save (the
  /// engine's contract is wiring-before-run, so this indicates a bug).
  void RestoreValues(const std::vector<std::uint64_t>& saved);

 private:
  friend std::vector<CounterSample> SnapshotMerged(const CounterRegistry&,
                                                   const CounterRegistry&);

  std::vector<std::string_view> names_;  // by id; interned
  std::vector<std::uint64_t> values_;    // by id
  std::vector<std::uint64_t> epochs_;    // by id; live iff == epoch_
  std::uint64_t epoch_ = 0;
  std::map<std::string_view, Id, std::less<>> index_;
};

/// Sums counter snapshots by name (the per-campaign roll-up of per-run
/// snapshots). Result is sorted by name.
[[nodiscard]] std::vector<CounterSample> MergeCounters(
    const std::vector<std::vector<CounterSample>>& snapshots);

/// Merges one sample into a sorted-by-name snapshot: adds to an existing
/// entry or inserts at the sorted position (how the campaign folds its own
/// counters — e.g. "campaign.configs_failed" — into the per-run roll-up).
void AddSample(std::vector<CounterSample>& samples, std::string_view name,
               std::uint64_t value);

/// Sorted merge-join of two registries' live counters into one snapshot,
/// summing values on name collisions. Byte-identical to
/// MergeCounters({a.Snapshot(), b.Snapshot()}) but with exactly one
/// allocation — the single heap touch a zero-alloc simulation run makes.
[[nodiscard]] std::vector<CounterSample> SnapshotMerged(
    const CounterRegistry& a, const CounterRegistry& b);

}  // namespace wsnlink::trace
