// Named monotonic counters, one registry per run.
//
// Each stack layer registers its counters by name ("mac.tx_attempts",
// "link.queue_drops", ...) and bumps them through a stable integer id, so
// the hot path is an array increment behind a null check. Snapshots are
// sorted by name, which makes them comparable across runs and mergeable
// across a sweep (the campaign's aggregated roll-up).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wsnlink::trace {

/// One counter reading in a snapshot.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;

  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

/// Registry of named monotonic counters. Not thread-safe: one registry
/// belongs to one simulation run.
class CounterRegistry {
 public:
  using Id = std::size_t;

  /// Returns the id for `name`, creating the counter (at zero) on first
  /// use. Registering the same name again returns the same id. Takes a
  /// view (with a transparent index) so registering literals each run
  /// allocates nothing once the name exists.
  Id Register(std::string_view name);

  /// Adds `delta` to a registered counter. Requires a valid id.
  void Add(Id id, std::uint64_t delta = 1) noexcept { values_[id] += delta; }

  /// Current value by name; 0 for unregistered names.
  [[nodiscard]] std::uint64_t Value(std::string_view name) const noexcept;

  /// Number of registered counters.
  [[nodiscard]] std::size_t Size() const noexcept { return names_.size(); }

  /// All counters, sorted by name.
  [[nodiscard]] std::vector<CounterSample> Snapshot() const;

 private:
  std::vector<std::string> names_;   // by id
  std::vector<std::uint64_t> values_;  // by id
  std::map<std::string, Id, std::less<>> index_;
};

/// Sums counter snapshots by name (the per-campaign roll-up of per-run
/// snapshots). Result is sorted by name.
[[nodiscard]] std::vector<CounterSample> MergeCounters(
    const std::vector<std::vector<CounterSample>>& snapshots);

/// Merges one sample into a sorted-by-name snapshot: adds to an existing
/// entry or inserts at the sorted position (how the campaign folds its own
/// counters — e.g. "campaign.configs_failed" — into the per-run roll-up).
void AddSample(std::vector<CounterSample>& samples, std::string_view name,
               std::uint64_t value);

}  // namespace wsnlink::trace
