// Duty-cycled low-power-listening MAC (BoX-MAC-2 style).
//
// The paper's Sec. VIII-D names "MAC parameters related to periodic
// wake-ups" as a factor with great performance impact that its always-on
// experiments exclude. This MAC models the TinyOS default LPL scheme:
//
//  * The receiver sleeps and wakes every `wakeup_interval` for a short
//    channel probe; it stays awake only while receiving.
//  * The sender transmits back-to-back copies of the data frame (a
//    "packet train", the packetised preamble) for up to one full wakeup
//    interval; the copy that lands inside the receiver's wake window is
//    acknowledged and stops the train.
//  * A train that ends without an ACK counts as one transmission attempt;
//    up to `max_tries` trains are sent, separated by `retry_delay`.
//
// Energy per delivered bit now has two sides: the sender's train is much
// more expensive than a single CSMA frame, while the receiver's radio is
// asleep most of the time. The extension bench (ext_lpl_dutycycle) sweeps
// the wakeup interval to expose the resulting energy/delay trade-off.
#pragma once

#include <cstdint>

#include "channel/channel.h"
#include "mac/mac.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace wsnlink::mac {

/// LPL configuration.
struct LplParams {
  /// Receiver wakeup period. Must be > 0. TinyOS defaults: 100-1000 ms.
  sim::Duration wakeup_interval = 100 * sim::kMillisecond;
  /// Maximum number of trains per packet, >= 1.
  int max_tries = 3;
  /// Delay before each retry train, >= 0.
  sim::Duration retry_delay = 0;
  /// CC2420 PA_LEVEL for all copies.
  int pa_level = 31;
  /// Receiver wake-probe duration per wakeup (channel sampling window).
  sim::Duration probe_duration = 11 * sim::kMillisecond;
};

/// The duty-cycling sender MAC (with the receiver's wake schedule modelled
/// internally: this is a point-to-point link simulation).
class LplMac final : public Mac {
 public:
  LplMac(sim::Simulator& simulator, channel::Channel& channel,
         LplParams params, util::Rng rng);

  void Send(std::uint64_t packet_id, int payload_bytes,
            DoneCallback done) override;

  [[nodiscard]] bool Busy() const override { return busy_; }

  void SetDeliveryCallback(DeliveryCallback cb) override {
    on_delivery_ = std::move(cb);
  }
  void SetAttemptCallback(AttemptCallback cb) override {
    on_attempt_ = std::move(cb);
  }

  void AttachTrace(const trace::TraceContext& ctx) override;

  [[nodiscard]] const LplParams& Params() const noexcept { return params_; }

  /// Receiver radio duty cycle implied by the parameters (fraction of time
  /// awake while idle): probe_duration / wakeup_interval.
  [[nodiscard]] double ReceiverIdleDutyCycle() const noexcept;

  /// Receiver idle-listening power in milliwatts, averaged over time
  /// (duty cycle * CC2420 RX power). The always-on CSMA receiver burns the
  /// full RX power instead; this quantifies LPL's receiver saving.
  [[nodiscard]] double ReceiverIdlePowerMw() const noexcept;

  /// Total copies radiated across all packets (diagnostics).
  [[nodiscard]] std::uint64_t CopiesSent() const noexcept { return copies_sent_; }

  /// Carrier-sense checks that found another node's frame on the air
  /// (always 0 without a shared medium: the solo LPL sender pre-dates
  /// multi-node and samples nothing before a train).
  [[nodiscard]] std::uint64_t CcaBusyCount() const noexcept override {
    return cca_busy_;
  }

  void SaveState(MacSnapshot& out) const override {
    out.rng = rng_;
    out.busy = busy_;
    out.packet_id = packet_id_;
    out.payload_bytes = payload_bytes_;
    out.frame_bytes = frame_bytes_;
    out.tries_done = trains_done_;
    out.copies_this_packet = copies_this_packet_;
    out.delivered_any = delivered_any_;
    out.receiver_latched = receiver_latched_;
    out.acked = acked_;
    out.accepted_at = accepted_at_;
    out.tx_energy_uj = tx_energy_uj_;
    out.done = done_;
    out.cca_busy = cca_busy_;
    out.copies_sent = copies_sent_;
  }

  void RestoreState(const MacSnapshot& snapshot) override {
    rng_ = snapshot.rng;
    busy_ = snapshot.busy;
    packet_id_ = snapshot.packet_id;
    payload_bytes_ = snapshot.payload_bytes;
    frame_bytes_ = snapshot.frame_bytes;
    trains_done_ = snapshot.tries_done;
    copies_this_packet_ = snapshot.copies_this_packet;
    delivered_any_ = snapshot.delivered_any;
    receiver_latched_ = snapshot.receiver_latched;
    acked_ = snapshot.acked;
    accepted_at_ = snapshot.accepted_at;
    tx_energy_uj_ = snapshot.tx_energy_uj;
    done_ = snapshot.done;
    cca_busy_ = snapshot.cca_busy;
    copies_sent_ = snapshot.copies_sent;
  }

 private:
  /// True if the receiver is awake at `t` (probe window each wakeup, plus
  /// it stays awake once a copy for the in-flight packet was decoded).
  [[nodiscard]] bool ReceiverAwake(sim::Time t) const;

  void StartTrain();
  /// Medium-only carrier sense before the train's first copy. Without a
  /// shared medium it falls straight through to SendCopy — no extra
  /// events, no RNG draws — keeping single-link runs bit-identical.
  void TrainCca(int retries_left);
  void BeginCopies();
  void SendCopy(sim::Time train_deadline);
  void FinishTrain(bool acked);
  void Complete();

  sim::Simulator& sim_;
  channel::Channel& channel_;
  // wsnstatic:transient(params_): MAC configuration fixed at construction; never mutated during a run
  LplParams params_;
  util::Rng rng_;
  // wsnstatic:transient(on_delivery_, on_attempt_): caller-supplied callback wiring fixed at construction; not simulation state
  DeliveryCallback on_delivery_;
  AttemptCallback on_attempt_;

  // Receiver wake schedule: wakes at phase_ + k * wakeup_interval.
  // wsnstatic:transient(phase_): drawn once in the constructor; constant for the node's lifetime
  sim::Duration phase_ = 0;

  // In-flight state.
  bool busy_ = false;
  std::uint64_t packet_id_ = 0;
  int payload_bytes_ = 0;
  int frame_bytes_ = 0;
  int trains_done_ = 0;
  int copies_this_packet_ = 0;
  bool delivered_any_ = false;
  bool receiver_latched_ = false;  // receiver saw a copy: stays awake
  bool acked_ = false;
  sim::Time accepted_at_ = 0;
  double tx_energy_uj_ = 0.0;
  DoneCallback done_;

  std::uint64_t copies_sent_ = 0;
  std::uint64_t cca_busy_ = 0;

  // Observability (null = off).
  // wsnstatic:transient(tracer_, counters_, node_, id_sends_, id_trains_, id_cca_busy_, id_copies_, id_frames_decoded_, id_acks_received_, id_bytes_radiated_): trace wiring fixed at attach time; counter rollback is handled by the caller, not the snapshot
  trace::Tracer* tracer_ = nullptr;
  trace::CounterRegistry* counters_ = nullptr;
  std::int32_t node_ = 0;
  trace::CounterRegistry::Id id_sends_ = 0;
  trace::CounterRegistry::Id id_trains_ = 0;
  trace::CounterRegistry::Id id_cca_busy_ = 0;
  trace::CounterRegistry::Id id_copies_ = 0;
  trace::CounterRegistry::Id id_frames_decoded_ = 0;
  trace::CounterRegistry::Id id_acks_received_ = 0;
  trace::CounterRegistry::Id id_bytes_radiated_ = 0;
};

}  // namespace wsnlink::mac
