// Unslotted CSMA-CA MAC with acknowledgements and bounded retransmission.
//
// Models the beaconless IEEE 802.15.4 mode of the TinyOS 2.1 CC2420 stack
// that the paper's motes ran:
//
//   SPI-load -> [initial backoff -> CCA -> turnaround -> frame airtime ->
//                ACK or ACK-wait timeout -> (retry delay)] * up to N_maxTries
//
// The two MAC-layer knobs the paper sweeps are N_maxTries (maximum number of
// transmissions per packet, 1 = no retransmission) and D_retry (delay
// inserted before each retransmission). One packet is in flight at a time;
// the queue above the MAC (link layer) feeds the next packet on completion.
#pragma once

#include <cstdint>

#include "channel/channel.h"
#include "mac/mac.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/rng.h"

namespace wsnlink::mac {

/// MAC-layer configuration (the paper's N_maxTries and D_retry, plus the
/// PHY power level the frame is radiated with).
struct MacParams {
  /// Maximum number of transmissions, >= 1. 1 means no retransmission.
  int max_tries = 3;
  /// Delay before each retransmission (D_retry), >= 0.
  sim::Duration retry_delay = 0;
  /// CC2420 PA_LEVEL used for every attempt.
  int pa_level = 31;
};

/// The always-on CSMA-CA sender MAC.
class CsmaMac final : public Mac {
 public:
  /// All referenced collaborators must outlive the MAC.
  CsmaMac(sim::Simulator& simulator, channel::Channel& channel,
          MacParams params, util::Rng rng);

  void Send(std::uint64_t packet_id, int payload_bytes,
            DoneCallback done) override;

  [[nodiscard]] bool Busy() const override { return busy_; }

  void SetDeliveryCallback(DeliveryCallback cb) override {
    on_delivery_ = std::move(cb);
  }
  void SetAttemptCallback(AttemptCallback cb) override {
    on_attempt_ = std::move(cb);
  }

  void AttachTrace(const trace::TraceContext& ctx) override;

  [[nodiscard]] const MacParams& Params() const noexcept { return params_; }

  /// Cumulative count of CCA checks that found the channel busy.
  [[nodiscard]] std::uint64_t CcaBusyCount() const noexcept override {
    return cca_busy_;
  }

  void SaveState(MacSnapshot& out) const override {
    out.rng = rng_;
    out.busy = busy_;
    out.packet_id = packet_id_;
    out.payload_bytes = payload_bytes_;
    out.frame_bytes = frame_bytes_;
    out.tries_done = tries_done_;
    out.delivered_any = delivered_any_;
    out.acked = acked_;
    out.accepted_at = accepted_at_;
    out.tx_energy_uj = tx_energy_uj_;
    out.listen_time = listen_time_;
    out.done = done_;
    out.cca_busy = cca_busy_;
  }

  void RestoreState(const MacSnapshot& snapshot) override {
    rng_ = snapshot.rng;
    busy_ = snapshot.busy;
    packet_id_ = snapshot.packet_id;
    payload_bytes_ = snapshot.payload_bytes;
    frame_bytes_ = snapshot.frame_bytes;
    tries_done_ = snapshot.tries_done;
    delivered_any_ = snapshot.delivered_any;
    acked_ = snapshot.acked;
    accepted_at_ = snapshot.accepted_at;
    tx_energy_uj_ = snapshot.tx_energy_uj;
    listen_time_ = snapshot.listen_time;
    done_ = snapshot.done;
    cca_busy_ = snapshot.cca_busy;
  }

 private:
  void StartAttempt();
  void DoCca(int cca_retries_left);
  void TransmitFrame();
  void FinishAttempt(bool acked);
  void Complete();
  /// Untraced fast path: computes the packet's whole CSMA attempt ladder
  /// synchronously (every channel/RNG call with the same explicit
  /// timestamps, in the same order, as the event-per-hop path) and
  /// schedules only the final completion event. Bit-identical results;
  /// used only when no tracer is attached, because collapsed execution
  /// would emit trace events out of ring order.
  void RunPacketFast();
  void EmitRadioState(trace::RadioState state);

  sim::Simulator& sim_;
  channel::Channel& channel_;
  // wsnstatic:transient(params_): MAC configuration fixed at construction; never mutated during a run
  MacParams params_;
  util::Rng rng_;
  // wsnstatic:transient(on_delivery_, on_attempt_): caller-supplied callback wiring fixed at construction; not simulation state
  DeliveryCallback on_delivery_;
  AttemptCallback on_attempt_;

  // In-flight send state.
  bool busy_ = false;
  std::uint64_t packet_id_ = 0;
  int payload_bytes_ = 0;
  int frame_bytes_ = 0;
  int tries_done_ = 0;
  bool delivered_any_ = false;
  bool acked_ = false;
  sim::Time accepted_at_ = 0;
  double tx_energy_uj_ = 0.0;
  sim::Duration listen_time_ = 0;
  DoneCallback done_;

  std::uint64_t cca_busy_ = 0;

  // Observability (null = off).
  // wsnstatic:transient(tracer_, counters_, node_, id_sends_, id_tx_attempts_, id_cca_busy_, id_frames_decoded_, id_acks_received_, id_bytes_radiated_): trace wiring fixed at attach time; counter rollback is handled by the caller, not the snapshot
  trace::Tracer* tracer_ = nullptr;
  trace::CounterRegistry* counters_ = nullptr;
  std::int32_t node_ = 0;
  trace::CounterRegistry::Id id_sends_ = 0;
  trace::CounterRegistry::Id id_tx_attempts_ = 0;
  trace::CounterRegistry::Id id_cca_busy_ = 0;
  trace::CounterRegistry::Id id_frames_decoded_ = 0;
  trace::CounterRegistry::Id id_acks_received_ = 0;
  trace::CounterRegistry::Id id_bytes_radiated_ = 0;
};

/// Maximum number of congestion backoffs per attempt before the attempt is
/// abandoned as if unacknowledged (bounds pathological interference).
inline constexpr int kMaxCcaRetries = 16;

}  // namespace wsnlink::mac
