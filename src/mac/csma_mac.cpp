#include "mac/csma_mac.h"

#include <stdexcept>

#include "phy/cc2420.h"
#include "phy/frame.h"
#include "phy/timing.h"

namespace wsnlink::mac {

CsmaMac::CsmaMac(sim::Simulator& simulator, channel::Channel& channel,
                 MacParams params, util::Rng rng)
    : sim_(simulator), channel_(channel), params_(params), rng_(rng) {
  if (params_.max_tries < 1) {
    throw std::invalid_argument("CsmaMac: max_tries must be >= 1");
  }
  if (params_.retry_delay < 0) {
    throw std::invalid_argument("CsmaMac: retry_delay must be >= 0");
  }
  if (!phy::IsValidPaLevel(params_.pa_level)) {
    throw std::invalid_argument("CsmaMac: invalid PA level");
  }
}

void CsmaMac::AttachTrace(const trace::TraceContext& ctx) {
  tracer_ = ctx.tracer;
  counters_ = ctx.counters;
  node_ = ctx.node;
  if (counters_ != nullptr) {
    id_sends_ = counters_->Register("mac.sends");
    id_tx_attempts_ = counters_->Register("mac.tx_attempts");
    id_cca_busy_ = counters_->Register("mac.cca_busy");
    id_frames_decoded_ = counters_->Register("mac.frames_decoded");
    id_acks_received_ = counters_->Register("mac.acks_received");
    id_bytes_radiated_ = counters_->Register("phy.bytes_radiated");
  }
}

void CsmaMac::EmitRadioState(trace::RadioState state) {
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kRadioState,
                   trace::Layer::kPhy, packet_id_,
                   static_cast<std::int64_t>(state), 0, 0.0, node_});
  }
}

void CsmaMac::Send(std::uint64_t packet_id, int payload_bytes,
                   DoneCallback done) {
  if (busy_) throw std::logic_error("CsmaMac::Send while busy");
  if (!done) throw std::invalid_argument("CsmaMac::Send: empty done callback");
  phy::ValidatePayloadSize(payload_bytes);

  busy_ = true;
  packet_id_ = packet_id;
  payload_bytes_ = payload_bytes;
  frame_bytes_ = phy::DataFrameBytes(payload_bytes);
  tries_done_ = 0;
  delivered_any_ = false;
  acked_ = false;
  accepted_at_ = sim_.Now();
  tx_energy_uj_ = 0.0;
  listen_time_ = 0;
  done_ = std::move(done);

  if (counters_ != nullptr) counters_->Add(id_sends_);
  EmitRadioState(trace::RadioState::kListen);

  // The collapsed fast path assumes this MAC is the channel's only user;
  // with a shared medium attached, other nodes interleave channel state
  // between our steps, so every hop must be a real event.
  if (tracer_ == nullptr && !channel_.ContendedMedium()) {
    RunPacketFast();
    return;
  }
  // One-time SPI load of the frame into the radio's TX FIFO.
  sim_.Schedule(phy::SpiLoadTime(payload_bytes_), [this] { StartAttempt(); });
}

void CsmaMac::RunPacketFast() {
  // Mirrors the Send -> StartAttempt -> DoCca -> TransmitFrame ->
  // FinishAttempt event chain step for step: every RNG draw and every
  // channel query happens in the same order with the same timestamp the
  // chained events would have used, so the results (and all derived
  // metrics) are bit-identical. Only the MAC touches the channel and the
  // MAC is strictly sequential, so no other actor can interleave channel
  // state between the collapsed steps.
  const double tx_dbm = phy::OutputPowerDbm(params_.pa_level);
  sim::Time t = sim_.Now() + phy::SpiLoadTime(payload_bytes_);
  for (;;) {
    // StartAttempt: random initial backoff.
    const auto backoff = static_cast<sim::Duration>(
        rng_.UniformInt(0, phy::kInitialBackoffMax));
    listen_time_ += backoff;
    t += backoff;

    // DoCca ladder.
    int cca_retries_left = kMaxCcaRetries;
    bool ebusy = false;
    for (;;) {
      if (!channel_.CcaBusy(t)) {
        listen_time_ += phy::kTurnaroundTime;
        t += phy::kTurnaroundTime;
        break;
      }
      ++cca_busy_;
      if (counters_ != nullptr) counters_->Add(id_cca_busy_);
      if (cca_retries_left <= 0) {
        // Persistent interference: attempt consumed without transmission.
        ++tries_done_;
        ebusy = true;
        break;
      }
      --cca_retries_left;
      const auto congestion = static_cast<sim::Duration>(
          rng_.UniformInt(0, phy::kCongestionBackoffMax));
      listen_time_ += congestion;
      t += congestion;
    }

    bool finish_acked = false;
    if (!ebusy) {
      // TransmitFrame + the post-airtime outcome handling.
      ++tries_done_;
      tx_energy_uj_ += phy::EnergyPerBitMicrojoule(params_.pa_level) * 8.0 *
                       static_cast<double>(frame_bytes_);
      if (counters_ != nullptr) {
        counters_->Add(id_tx_attempts_);
        counters_->Add(id_bytes_radiated_,
                       static_cast<std::uint64_t>(frame_bytes_));
      }
      const int attempt = tries_done_;
      channel_.BeginTransmission(tx_dbm, t, t + phy::AirTime(frame_bytes_));
      t += phy::AirTime(frame_bytes_);
      const auto outcome = channel_.Transmit(tx_dbm, frame_bytes_, t);

      AttemptInfo attempt_info;
      attempt_info.packet_id = packet_id_;
      attempt_info.attempt = attempt;
      attempt_info.payload_bytes = payload_bytes_;
      attempt_info.at = t;
      attempt_info.rssi_dbm = outcome.rssi_dbm;
      attempt_info.snr_db = outcome.snr_db;
      attempt_info.data_received = outcome.received;

      if (!outcome.received) {
        if (on_attempt_) on_attempt_(attempt_info);
        listen_time_ += phy::kAckWaitTimeout;
        t += phy::kAckWaitTimeout;
      } else {
        delivered_any_ = true;
        if (counters_ != nullptr) counters_->Add(id_frames_decoded_);
        if (on_delivery_) {
          DeliveryInfo info;
          info.packet_id = packet_id_;
          info.payload_bytes = payload_bytes_;
          info.received_at = t;
          info.rssi_dbm = outcome.rssi_dbm;
          info.snr_db = outcome.snr_db;
          info.lqi = outcome.lqi;
          info.attempt = attempt;
          on_delivery_(info);
        }
        const auto ack =
            channel_.Transmit(tx_dbm, phy::kAckFrameBytes, t);
        attempt_info.acked = ack.received;
        if (counters_ != nullptr && ack.received) {
          counters_->Add(id_acks_received_);
        }
        if (on_attempt_) on_attempt_(attempt_info);
        if (ack.received) {
          listen_time_ += phy::kAckTime;
          t += phy::kAckTime;
          finish_acked = true;
        } else {
          listen_time_ += phy::kAckWaitTimeout;
          t += phy::kAckWaitTimeout;
        }
      }
    }

    // FinishAttempt, evaluated at time t.
    if (finish_acked) {
      acked_ = true;
      break;
    }
    if (tries_done_ >= params_.max_tries) break;
    t += params_.retry_delay;
  }
  // Only the completion is a real event: the done callback serves the next
  // queued packet, so it must run at the packet's true completion time.
  sim_.Schedule(t - sim_.Now(), [this] { Complete(); });
}

void CsmaMac::StartAttempt() {
  // Unslotted CSMA-CA: random initial backoff, then clear-channel check.
  const auto backoff = static_cast<sim::Duration>(
      rng_.UniformInt(0, phy::kInitialBackoffMax));
  listen_time_ += backoff;
  sim_.Schedule(backoff, [this] { DoCca(kMaxCcaRetries); });
}

void CsmaMac::DoCca(int cca_retries_left) {
  if (!channel_.CcaBusy(sim_.Now())) {
    // Channel clear: RX->TX turnaround, then the frame goes on air.
    listen_time_ += phy::kTurnaroundTime;
    sim_.Schedule(phy::kTurnaroundTime, [this] { TransmitFrame(); });
    return;
  }
  ++cca_busy_;
  if (counters_ != nullptr) counters_->Add(id_cca_busy_);
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kCcaBusy, trace::Layer::kMac,
                   packet_id_, cca_retries_left, 0, 0.0, node_});
  }
  if (cca_retries_left <= 0) {
    // Persistent interference: the attempt is consumed without a
    // transmission, mirroring TinyOS's EBUSY send-done path.
    ++tries_done_;
    FinishAttempt(/*acked=*/false);
    return;
  }
  const auto backoff = static_cast<sim::Duration>(
      rng_.UniformInt(0, phy::kCongestionBackoffMax));
  listen_time_ += backoff;
  sim_.Schedule(backoff,
                [this, cca_retries_left] { DoCca(cca_retries_left - 1); });
}

void CsmaMac::TransmitFrame() {
  ++tries_done_;
  const sim::Duration airtime = phy::AirTime(frame_bytes_);
  tx_energy_uj_ += phy::EnergyPerBitMicrojoule(params_.pa_level) * 8.0 *
                   static_cast<double>(frame_bytes_);

  if (counters_ != nullptr) {
    counters_->Add(id_tx_attempts_);
    counters_->Add(id_bytes_radiated_, static_cast<std::uint64_t>(frame_bytes_));
  }
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kTxAttemptStart,
                   trace::Layer::kMac, packet_id_, tries_done_, frame_bytes_,
                   0.0, node_});
  }
  EmitRadioState(trace::RadioState::kTx);
  channel_.BeginTransmission(phy::OutputPowerDbm(params_.pa_level), sim_.Now(),
                             sim_.Now() + airtime);

  const int attempt = tries_done_;
  sim_.Schedule(airtime, [this, attempt] {
    const double tx_dbm = phy::OutputPowerDbm(params_.pa_level);
    const auto outcome = channel_.Transmit(tx_dbm, frame_bytes_, sim_.Now());
    EmitRadioState(trace::RadioState::kListen);

    AttemptInfo attempt_info;
    attempt_info.packet_id = packet_id_;
    attempt_info.attempt = attempt;
    attempt_info.payload_bytes = payload_bytes_;
    attempt_info.at = sim_.Now();
    attempt_info.rssi_dbm = outcome.rssi_dbm;
    attempt_info.snr_db = outcome.snr_db;
    attempt_info.data_received = outcome.received;

    if (!outcome.received) {
      if (tracer_ != nullptr) {
        tracer_->Emit({sim_.Now(), trace::EventType::kTxAttemptResult,
                       trace::Layer::kMac, packet_id_, attempt, 0,
                       outcome.snr_db, node_});
      }
      if (on_attempt_) on_attempt_(attempt_info);
      // Data frame lost: sender idles through the full ACK-wait window.
      listen_time_ += phy::kAckWaitTimeout;
      sim_.Schedule(phy::kAckWaitTimeout, [this] { FinishAttempt(false); });
      return;
    }
    // Receiver decoded this copy.
    delivered_any_ = true;
    if (counters_ != nullptr) counters_->Add(id_frames_decoded_);
    if (on_delivery_) {
      DeliveryInfo info;
      info.packet_id = packet_id_;
      info.payload_bytes = payload_bytes_;
      info.received_at = sim_.Now();
      info.rssi_dbm = outcome.rssi_dbm;
      info.snr_db = outcome.snr_db;
      info.lqi = outcome.lqi;
      info.attempt = attempt;
      on_delivery_(info);
    }
    // The receiver turns around and sends an 11-byte ACK; the ACK itself
    // traverses the (symmetric) channel and can be lost.
    const auto ack = channel_.Transmit(phy::OutputPowerDbm(params_.pa_level),
                                       phy::kAckFrameBytes, sim_.Now());
    attempt_info.acked = ack.received;
    if (tracer_ != nullptr) {
      tracer_->Emit({sim_.Now(), trace::EventType::kTxAttemptResult,
                     trace::Layer::kMac, packet_id_, attempt,
                     trace::kFlagDataReceived |
                         (ack.received ? trace::kFlagAckReceived : 0),
                     outcome.snr_db, node_});
      if (ack.received) {
        tracer_->Emit({sim_.Now(), trace::EventType::kAckReceived,
                       trace::Layer::kMac, packet_id_, attempt, 0, 0.0, node_});
      }
    }
    if (counters_ != nullptr && ack.received) counters_->Add(id_acks_received_);
    if (on_attempt_) on_attempt_(attempt_info);
    if (ack.received) {
      listen_time_ += phy::kAckTime;
      sim_.Schedule(phy::kAckTime, [this] { FinishAttempt(true); });
    } else {
      listen_time_ += phy::kAckWaitTimeout;
      sim_.Schedule(phy::kAckWaitTimeout, [this] { FinishAttempt(false); });
    }
  });
}

void CsmaMac::FinishAttempt(bool acked) {
  if (acked) {
    acked_ = true;
    Complete();
    return;
  }
  if (tries_done_ >= params_.max_tries) {
    Complete();
    return;
  }
  // Retry after the configured delay, with a fresh backoff.
  sim_.Schedule(params_.retry_delay, [this] { StartAttempt(); });
}

void CsmaMac::Complete() {
  SendResult result;
  result.packet_id = packet_id_;
  result.acked = acked_;
  result.delivered = delivered_any_;
  result.tries = tries_done_;
  result.accepted_at = accepted_at_;
  result.completed_at = sim_.Now();
  result.tx_energy_uj = tx_energy_uj_;
  result.radiated_bytes = frame_bytes_ * tries_done_;
  result.listen_time = listen_time_;

  busy_ = false;
  EmitRadioState(trace::RadioState::kIdle);
  // Move the callback out before invoking: the callback will typically call
  // Send() again for the next queued packet.
  DoneCallback done = std::move(done_);
  done_ = nullptr;
  done(result);
}

}  // namespace wsnlink::mac
