// MAC-layer interface and shared report types.
//
// Two MAC implementations live behind this interface: the always-on
// unslotted CSMA-CA of the paper's experiments (csma_mac.h) and a
// duty-cycled low-power-listening MAC (lpl_mac.h) covering the paper's
// future-work factor "MAC parameters related to periodic wake-ups". The
// link layer and simulation runner only see this interface.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace wsnlink::mac {

/// What happened to one send request, reported via the done callback.
struct SendResult {
  std::uint64_t packet_id = 0;
  /// True if the sender received an ACK (link-layer success).
  bool acked = false;
  /// True if the receiver decoded at least one copy of the data frame
  /// (possible even when unacked, if only the ACK was lost).
  bool delivered = false;
  /// Number of transmissions actually performed (frame copies on air).
  int tries = 0;
  /// When the MAC accepted the packet (start of SPI load).
  sim::Time accepted_at = 0;
  /// When the MAC finished with the packet (ACK processed / final timeout).
  sim::Time completed_at = 0;
  /// Total transmit energy radiated for this packet, microjoules
  /// (all attempts, data frames only; ACKs are receiver energy).
  double tx_energy_uj = 0.0;
  /// Total bytes radiated over all attempts.
  int radiated_bytes = 0;
  /// Time the sender's radio spent in RX/listen mode for this packet
  /// (backoffs, turnarounds, ACK waits) — the energy component the paper's
  /// Eq. 2 deliberately excludes but a platform power budget includes.
  sim::Duration listen_time = 0;
};

/// Per-copy delivery notification for the receiver side (fires at data
/// frame end for every successfully decoded copy, including duplicates).
struct DeliveryInfo {
  std::uint64_t packet_id = 0;
  int payload_bytes = 0;
  sim::Time received_at = 0;
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  int lqi = 0;
  /// 1 for the first attempt of the packet, incrementing per retry.
  int attempt = 0;
};

/// Outcome of one radio transmission attempt (observer hook for the
/// attempt-level analysis behind Fig. 6's PER-vs-SNR study).
struct AttemptInfo {
  std::uint64_t packet_id = 0;
  int attempt = 0;  ///< 1-based within the packet
  int payload_bytes = 0;
  sim::Time at = 0;  ///< end of the frame on air
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  bool data_received = false;
  bool acked = false;
};

struct MacSnapshot;

/// Abstract sender-side MAC entity: one packet in flight at a time.
class Mac {
 public:
  using DoneCallback = std::function<void(const SendResult&)>;
  using DeliveryCallback = std::function<void(const DeliveryInfo&)>;
  using AttemptCallback = std::function<void(const AttemptInfo&)>;

  virtual ~Mac() = default;

  /// Starts transmitting one packet (payload in [1, 114]); requires no
  /// send in progress. Completion is reported via `done`.
  virtual void Send(std::uint64_t packet_id, int payload_bytes,
                    DoneCallback done) = 0;

  /// True while a send is in progress.
  [[nodiscard]] virtual bool Busy() const = 0;

  /// Installs the receiver-side delivery observer (may be empty).
  virtual void SetDeliveryCallback(DeliveryCallback cb) = 0;

  /// Installs the per-attempt observer (may be empty).
  virtual void SetAttemptCallback(AttemptCallback cb) = 0;

  /// Attaches observability sinks (event tracer and/or counter registry).
  /// Default: no instrumentation. The context's pointees must outlive the
  /// MAC; call before the first Send().
  virtual void AttachTrace(const trace::TraceContext& /*ctx*/) {}

  /// Cumulative count of carrier-sense checks that found the channel busy
  /// (also exported as the "mac.cca_busy" counter when one is attached).
  /// Default 0 for MACs without carrier sensing.
  [[nodiscard]] virtual std::uint64_t CcaBusyCount() const noexcept {
    return 0;
  }

  /// Copies the MAC's in-flight state into `out` so a speculative execution
  /// can later be rolled back with RestoreState. The image pairs with a
  /// simulator snapshot taken at the same instant (pending MAC events are
  /// the kernel's to save). Defaults are no-ops for stateless MACs.
  virtual void SaveState(MacSnapshot& /*out*/) const {}
  virtual void RestoreState(const MacSnapshot& /*snapshot*/) {}
};

/// Union of both MACs' in-flight members (csma tries and lpl trains share
/// `tries_done`; lpl-only fields stay defaulted under CSMA). A plain value
/// struct so per-LP snapshot arrays can reuse their storage across rounds.
struct MacSnapshot {
  util::Rng rng;
  bool busy = false;
  std::uint64_t packet_id = 0;
  int payload_bytes = 0;
  int frame_bytes = 0;
  int tries_done = 0;
  int copies_this_packet = 0;
  bool delivered_any = false;
  bool receiver_latched = false;
  bool acked = false;
  sim::Time accepted_at = 0;
  double tx_energy_uj = 0.0;
  sim::Duration listen_time = 0;
  Mac::DoneCallback done;
  std::uint64_t cca_busy = 0;
  std::uint64_t copies_sent = 0;
};

}  // namespace wsnlink::mac
