#include "mac/lpl_mac.h"

#include <stdexcept>

#include "mac/csma_mac.h"  // kMaxCcaRetries
#include "phy/cc2420.h"
#include "phy/frame.h"
#include "phy/timing.h"

namespace wsnlink::mac {

namespace {

/// Gap between consecutive copies in a train: the sender's short listen
/// window for the ACK (BoX-MAC-2 uses ~1.6 ms).
constexpr sim::Duration kInterCopyGap = 1'600;

}  // namespace

LplMac::LplMac(sim::Simulator& simulator, channel::Channel& channel,
               LplParams params, util::Rng rng)
    : sim_(simulator), channel_(channel), params_(params), rng_(rng) {
  if (params_.wakeup_interval <= 0) {
    throw std::invalid_argument("LplMac: wakeup interval must be > 0");
  }
  if (params_.max_tries < 1) {
    throw std::invalid_argument("LplMac: max_tries must be >= 1");
  }
  if (params_.retry_delay < 0) {
    throw std::invalid_argument("LplMac: retry_delay must be >= 0");
  }
  if (params_.probe_duration <= 0 ||
      params_.probe_duration >= params_.wakeup_interval) {
    throw std::invalid_argument(
        "LplMac: probe duration must be in (0, wakeup interval)");
  }
  if (!phy::IsValidPaLevel(params_.pa_level)) {
    throw std::invalid_argument("LplMac: invalid PA level");
  }
  // The receiver's wake phase is arbitrary relative to the sender.
  phase_ = static_cast<sim::Duration>(
      rng_.UniformInt(0, params_.wakeup_interval - 1));
}

void LplMac::AttachTrace(const trace::TraceContext& ctx) {
  tracer_ = ctx.tracer;
  counters_ = ctx.counters;
  node_ = ctx.node;
  if (counters_ != nullptr) {
    id_sends_ = counters_->Register("mac.sends");
    id_trains_ = counters_->Register("mac.lpl_trains");
    id_cca_busy_ = counters_->Register("mac.cca_busy");
    id_copies_ = counters_->Register("mac.lpl_copies");
    id_frames_decoded_ = counters_->Register("mac.frames_decoded");
    id_acks_received_ = counters_->Register("mac.acks_received");
    id_bytes_radiated_ = counters_->Register("phy.bytes_radiated");
  }
}

double LplMac::ReceiverIdleDutyCycle() const noexcept {
  return static_cast<double>(params_.probe_duration) /
         static_cast<double>(params_.wakeup_interval);
}

double LplMac::ReceiverIdlePowerMw() const noexcept {
  return ReceiverIdleDutyCycle() * phy::kSupplyVolts * phy::kRxCurrentMa;
}

bool LplMac::ReceiverAwake(sim::Time t) const {
  if (receiver_latched_) return true;
  const sim::Duration in_cycle =
      (t - phase_) % params_.wakeup_interval >= 0
          ? (t - phase_) % params_.wakeup_interval
          : (t - phase_) % params_.wakeup_interval + params_.wakeup_interval;
  return in_cycle < params_.probe_duration;
}

void LplMac::Send(std::uint64_t packet_id, int payload_bytes,
                  DoneCallback done) {
  if (busy_) throw std::logic_error("LplMac::Send while busy");
  if (!done) throw std::invalid_argument("LplMac::Send: empty done callback");
  phy::ValidatePayloadSize(payload_bytes);

  busy_ = true;
  packet_id_ = packet_id;
  payload_bytes_ = payload_bytes;
  frame_bytes_ = phy::DataFrameBytes(payload_bytes);
  trains_done_ = 0;
  copies_this_packet_ = 0;
  delivered_any_ = false;
  receiver_latched_ = false;
  acked_ = false;
  accepted_at_ = sim_.Now();
  tx_energy_uj_ = 0.0;
  done_ = std::move(done);

  if (counters_ != nullptr) counters_->Add(id_sends_);
  sim_.Schedule(phy::SpiLoadTime(payload_bytes_), [this] { StartTrain(); });
}

void LplMac::StartTrain() {
  ++trains_done_;
  receiver_latched_ = false;
  if (counters_ != nullptr) counters_->Add(id_trains_);
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kLplTrainStart,
                   trace::Layer::kMac, packet_id_, trains_done_, 0, 0.0,
                   node_});
  }
  // Short CSMA backoff, then a carrier-sense check before the train.
  const auto backoff = static_cast<sim::Duration>(
      rng_.UniformInt(0, phy::kCongestionBackoffMax));
  sim_.Schedule(backoff + phy::kTurnaroundTime,
                [this] { TrainCca(kMaxCcaRetries); });
}

void LplMac::TrainCca(int retries_left) {
  // Only the shared medium is sensed (MediumBusy is RNG-free): the solo
  // LPL sender never sampled the channel before a train, and folding the
  // noise/interferer legs in here would shift their renewal streams and
  // break bit-identity of every existing single-link run.
  if (!channel_.MediumBusy(sim_.Now())) {
    BeginCopies();
    return;
  }
  ++cca_busy_;
  if (counters_ != nullptr) counters_->Add(id_cca_busy_);
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kCcaBusy, trace::Layer::kMac,
                   packet_id_, retries_left, 0, 0.0, node_});
  }
  if (retries_left <= 0) {
    // Persistent contention: transmit anyway — the train must cover the
    // receiver's wakeup window or the packet has no chance at all, and the
    // collision logic at the receiver decides what survives.
    BeginCopies();
    return;
  }
  const auto backoff = static_cast<sim::Duration>(
      rng_.UniformInt(0, phy::kCongestionBackoffMax));
  sim_.Schedule(backoff, [this, retries_left] { TrainCca(retries_left - 1); });
}

void LplMac::BeginCopies() {
  // The train runs for up to one wakeup interval plus a probe
  // (guaranteeing the receiver's window is covered).
  const sim::Time deadline =
      sim_.Now() + params_.wakeup_interval + params_.probe_duration;
  SendCopy(deadline);
}

void LplMac::SendCopy(sim::Time train_deadline) {
  const sim::Duration airtime = phy::AirTime(frame_bytes_);
  ++copies_sent_;
  ++copies_this_packet_;
  tx_energy_uj_ += phy::EnergyPerBitMicrojoule(params_.pa_level) * 8.0 *
                   static_cast<double>(frame_bytes_);

  if (counters_ != nullptr) {
    counters_->Add(id_copies_);
    counters_->Add(id_bytes_radiated_, static_cast<std::uint64_t>(frame_bytes_));
  }
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kLplCopySent,
                   trace::Layer::kMac, packet_id_, trains_done_,
                   copies_this_packet_, 0.0, node_});
  }
  channel_.BeginTransmission(phy::OutputPowerDbm(params_.pa_level), sim_.Now(),
                             sim_.Now() + airtime);

  sim_.Schedule(airtime, [this, train_deadline] {
    const double tx_dbm = phy::OutputPowerDbm(params_.pa_level);
    const auto outcome = channel_.Transmit(tx_dbm, frame_bytes_, sim_.Now());
    const bool decoded = outcome.received && ReceiverAwake(sim_.Now());

    if (decoded) {
      if (!receiver_latched_ && tracer_ != nullptr) {
        tracer_->Emit({sim_.Now(), trace::EventType::kLplReceiverWake,
                       trace::Layer::kMac, packet_id_, trains_done_, 0, 0.0,
                       node_});
      }
      receiver_latched_ = true;
      delivered_any_ = true;
      if (counters_ != nullptr) counters_->Add(id_frames_decoded_);
      if (on_delivery_) {
        DeliveryInfo info;
        info.packet_id = packet_id_;
        info.payload_bytes = payload_bytes_;
        info.received_at = sim_.Now();
        info.rssi_dbm = outcome.rssi_dbm;
        info.snr_db = outcome.snr_db;
        info.lqi = outcome.lqi;
        info.attempt = trains_done_;
        on_delivery_(info);
      }
      // The receiver acknowledges; the ACK traverses the channel too.
      const auto ack = channel_.Transmit(tx_dbm, phy::kAckFrameBytes,
                                         sim_.Now());
      if (ack.received) {
        if (counters_ != nullptr) counters_->Add(id_acks_received_);
        if (tracer_ != nullptr) {
          tracer_->Emit({sim_.Now(), trace::EventType::kAckReceived,
                         trace::Layer::kMac, packet_id_, trains_done_, 0, 0.0,
                         node_});
        }
        if (on_attempt_) {
          AttemptInfo info;
          info.packet_id = packet_id_;
          info.attempt = trains_done_;
          info.payload_bytes = payload_bytes_;
          info.at = sim_.Now();
          info.rssi_dbm = outcome.rssi_dbm;
          info.snr_db = outcome.snr_db;
          info.data_received = true;
          info.acked = true;
          on_attempt_(info);
        }
        sim_.Schedule(phy::kAckTime, [this] { FinishTrain(true); });
        return;
      }
      // ACK lost: keep the train going; the awake receiver will re-ack a
      // later copy.
    }

    const sim::Time next_copy_end =
        sim_.Now() + kInterCopyGap + phy::AirTime(frame_bytes_);
    if (next_copy_end > train_deadline) {
      if (on_attempt_) {
        AttemptInfo info;
        info.packet_id = packet_id_;
        info.attempt = trains_done_;
        info.payload_bytes = payload_bytes_;
        info.at = sim_.Now();
        info.rssi_dbm = outcome.rssi_dbm;
        info.snr_db = outcome.snr_db;
        info.data_received = receiver_latched_;
        info.acked = false;
        on_attempt_(info);
      }
      FinishTrain(false);
      return;
    }
    sim_.Schedule(kInterCopyGap,
                  [this, train_deadline] { SendCopy(train_deadline); });
  });
}

void LplMac::FinishTrain(bool acked) {
  if (acked) {
    acked_ = true;
    Complete();
    return;
  }
  if (trains_done_ >= params_.max_tries) {
    Complete();
    return;
  }
  sim_.Schedule(params_.retry_delay, [this] { StartTrain(); });
}

void LplMac::Complete() {
  SendResult result;
  result.packet_id = packet_id_;
  result.acked = acked_;
  result.delivered = delivered_any_;
  result.tries = trains_done_;
  result.accepted_at = accepted_at_;
  result.completed_at = sim_.Now();
  result.tx_energy_uj = tx_energy_uj_;
  result.radiated_bytes = frame_bytes_ * copies_this_packet_;

  busy_ = false;
  DoneCallback done = std::move(done_);
  done_ = nullptr;
  done(result);
}

}  // namespace wsnlink::mac
