#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wsnlink::util {

void RunningStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::Mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::Mean on empty accumulator");
  return mean_;
}

double RunningStats::Variance() const {
  if (n_ == 0) throw std::logic_error("RunningStats::Variance on empty accumulator");
  if (n_ == 1) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::Min on empty accumulator");
  return min_;
}

double RunningStats::Max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::Max on empty accumulator");
  return max_;
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("Mean of empty span");
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningStats acc;
  for (const double x : xs) acc.Add(x);
  return acc.StdDev();
}

double Quantile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("Quantile of empty span");
  std::vector<double> work(xs.begin(), xs.end());
  return QuantileInPlace(work, p);
}

double QuantileInPlace(std::span<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("Quantile of empty span");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("Quantile p out of [0,1]");
  // Selection instead of a full sort: the interpolation only needs the
  // lo-th and (lo+1)-th order statistics, and nth_element leaves the tail
  // >= the pivot, so the next statistic is the tail's minimum. Identical
  // values to sorting, at O(n).
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), lo_it, xs.end());
  const double lo_v = *lo_it;
  const double hi_v =
      hi == lo ? lo_v : *std::min_element(lo_it + 1, xs.end());
  return lo_v * (1.0 - frac) + hi_v * frac;
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

double EmpiricalCdf(std::span<const double> sorted_xs, double t) {
  if (sorted_xs.empty()) {
    throw std::invalid_argument("EmpiricalCdf of empty span");
  }
  const auto at_most =
      std::upper_bound(sorted_xs.begin(), sorted_xs.end(), t) -
      sorted_xs.begin();
  return static_cast<double>(at_most) / static_cast<double>(sorted_xs.size());
}

double EmpiricalCcdf(std::span<const double> sorted_xs, double t) {
  return 1.0 - EmpiricalCdf(sorted_xs, t);
}

double DkwEpsilon(std::size_t n, double confidence) {
  if (n == 0) throw std::invalid_argument("DkwEpsilon: n must be >= 1");
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("DkwEpsilon: confidence must be in (0, 1)");
  }
  const double alpha = 1.0 - confidence;
  return std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(n)));
}

ConfidenceInterval DkwQuantileBand(std::span<const double> sorted_xs, double p,
                                   double confidence) {
  if (sorted_xs.empty()) {
    throw std::invalid_argument("DkwQuantileBand of empty span");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("DkwQuantileBand: p out of [0,1]");
  }
  const double eps = DkwEpsilon(sorted_xs.size(), confidence);
  ConfidenceInterval band;
  band.lo = Quantile(sorted_xs, std::max(0.0, p - eps));
  band.hi = Quantile(sorted_xs, std::min(1.0, p + eps));
  return band;
}

ConfidenceInterval BootstrapQuantileCi(std::span<const double> xs, double p,
                                       Rng rng, int resamples,
                                       double confidence) {
  if (xs.empty()) {
    throw std::invalid_argument("BootstrapQuantileCi of empty span");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("BootstrapQuantileCi: p out of [0,1]");
  }
  if (resamples < 1) {
    throw std::invalid_argument("BootstrapQuantileCi: resamples must be >= 1");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument(
        "BootstrapQuantileCi: confidence must be in (0, 1)");
  }
  const auto n = static_cast<std::int64_t>(xs.size());
  std::vector<double> resample(xs.size());
  std::vector<double> estimates;
  estimates.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (auto& slot : resample) {
      slot = xs[static_cast<std::size_t>(rng.UniformInt(0, n - 1))];
    }
    estimates.push_back(Quantile(resample, p));
  }
  const double alpha = 1.0 - confidence;
  ConfidenceInterval ci;
  ci.lo = Quantile(estimates, alpha / 2.0);
  ci.hi = Quantile(estimates, 1.0 - alpha / 2.0);
  return ci;
}

std::optional<LinearFit> FitLine(std::span<const double> xs,
                                 std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("FitLine: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return std::nullopt;

  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return std::nullopt;

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r_squared = (syy > 0.0) ? std::max(0.0, 1.0 - ss_res / syy) : 1.0;
  fit.rmse = std::sqrt(ss_res / static_cast<double>(n));
  return fit;
}

std::optional<double> Correlation(std::span<const double> xs,
                                  std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("Correlation: size mismatch");
  if (xs.size() < 2) return std::nullopt;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

double Rmse(std::span<const double> predicted, std::span<const double> observed) {
  if (predicted.size() != observed.size() || predicted.empty()) {
    throw std::invalid_argument("Rmse: mismatched or empty spans");
  }
  double ss = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - observed[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(predicted.size()));
}

double MaxAbsError(std::span<const double> predicted,
                   std::span<const double> observed) {
  if (predicted.size() != observed.size() || predicted.empty()) {
    throw std::invalid_argument("MaxAbsError: mismatched or empty spans");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    worst = std::max(worst, std::abs(predicted[i] - observed[i]));
  }
  return worst;
}

}  // namespace wsnlink::util
