// Minimal CSV writer/reader for dataset export.
//
// The experiment campaign emits the same per-packet metadata schema the
// paper's public dataset used; this module handles the file format. The
// reader exists so tests can round-trip what the campaign wrote and so
// downstream analysis (fitting) can run off a dumped dataset instead of a
// live simulation.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace wsnlink::util {

/// Streams rows to a CSV file. Throws std::runtime_error (with the path in
/// the message) if the file cannot be opened or any write fails — a full
/// disk must never produce a silently truncated dataset. Call Close() to
/// surface flush/close failures; the destructor closes too but swallows
/// errors (destructors must not throw), so callers that care about
/// durability close explicitly.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> headers);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; the cell count must equal the header count. Throws
  /// std::runtime_error when the stream reports a write failure.
  void WriteRow(const std::vector<std::string>& cells);

  /// Flushes and closes, throwing std::runtime_error if either fails.
  /// Idempotent; after Close() the writer accepts no more rows.
  void Close();

  [[nodiscard]] std::size_t RowsWritten() const noexcept { return rows_; }
  [[nodiscard]] const std::string& Path() const noexcept { return path_; }

 private:
  void WriteCells(const std::vector<std::string>& cells);
  void ThrowIfBad(const char* action);

  std::ofstream out_;
  std::string path_;
  std::size_t columns_;
  std::size_t rows_ = 0;
  bool closed_ = false;
};

/// Fully parsed CSV contents.
struct CsvData {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t ColumnIndex(std::string_view name) const;

  /// Column values parsed as doubles; throws on non-numeric cells.
  [[nodiscard]] std::vector<double> NumericColumn(std::string_view name) const;
};

/// Reads an entire CSV file (with header line). Handles quoted cells with
/// embedded commas and doubled quotes.
[[nodiscard]] CsvData ReadCsv(const std::string& path);

/// Splits a single CSV line into cells (exposed for tests).
[[nodiscard]] std::vector<std::string> ParseCsvLine(std::string_view line);

/// Escapes a cell for CSV output (exposed for tests).
[[nodiscard]] std::string EscapeCsvCell(std::string_view cell);

}  // namespace wsnlink::util
