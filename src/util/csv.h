// Minimal CSV writer/reader for dataset export.
//
// The experiment campaign emits the same per-packet metadata schema the
// paper's public dataset used; this module handles the file format. The
// reader exists so tests can round-trip what the campaign wrote and so
// downstream analysis (fitting) can run off a dumped dataset instead of a
// live simulation.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace wsnlink::util {

/// Streams rows to a CSV file. Throws std::runtime_error if the file cannot
/// be opened. Flushes on destruction (RAII).
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; the cell count must equal the header count.
  void WriteRow(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t RowsWritten() const noexcept { return rows_; }

 private:
  void WriteCells(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Fully parsed CSV contents.
struct CsvData {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t ColumnIndex(std::string_view name) const;

  /// Column values parsed as doubles; throws on non-numeric cells.
  [[nodiscard]] std::vector<double> NumericColumn(std::string_view name) const;
};

/// Reads an entire CSV file (with header line). Handles quoted cells with
/// embedded commas and doubled quotes.
[[nodiscard]] CsvData ReadCsv(const std::string& path);

/// Splits a single CSV line into cells (exposed for tests).
[[nodiscard]] std::vector<std::string> ParseCsvLine(std::string_view line);

/// Escapes a cell for CSV output (exposed for tests).
[[nodiscard]] std::string EscapeCsvCell(std::string_view cell);

}  // namespace wsnlink::util
