// Aligned plain-text table rendering for bench output.
//
// Every bench binary prints the rows/series of one paper table or figure;
// this helper keeps them uniformly formatted and diff-friendly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace wsnlink::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision so benchmark output is stable across runs.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  TextTable& NewRow();

  TextTable& Add(std::string cell);
  TextTable& Add(const char* cell);
  /// Formats with `precision` digits after the decimal point.
  TextTable& Add(double value, int precision = 3);
  TextTable& Add(int value);
  TextTable& Add(long value);
  TextTable& Add(unsigned long value);

  [[nodiscard]] std::size_t RowCount() const noexcept { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  [[nodiscard]] std::string ToString() const;

  /// Renders as CSV (comma-separated; cells containing commas are quoted).
  [[nodiscard]] std::string ToCsv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with TextTable).
[[nodiscard]] std::string FormatDouble(double value, int precision);

/// Prints a section banner ("== title ==") used by bench binaries.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace wsnlink::util
