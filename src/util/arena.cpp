#include "util/arena.h"

#include <cstdint>

namespace wsnlink::util {

void* MonotonicArena::Allocate(std::size_t bytes, std::size_t align) {
  // Walk forward from the active chunk: Reset() rewinds `used` on every
  // chunk, so retained chunks are revisited in order before any growth.
  while (active_ < chunks_.size()) {
    Chunk& chunk = chunks_[active_];
    const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    const std::size_t aligned =
        ((base + chunk.used + align - 1) & ~(align - 1)) - base;
    if (aligned + bytes <= chunk.size) {
      chunk.used = aligned + bytes;
      return chunk.data.get() + aligned;
    }
    ++active_;
  }
  // Every retained chunk is exhausted: grow. Oversized requests get an
  // exactly-sized chunk so they do not inflate the default chunk size.
  const std::size_t size = bytes + align > chunk_bytes_ ? bytes + align
                                                        : chunk_bytes_;
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  active_ = chunks_.size() - 1;
  Chunk& fresh = chunks_.back();
  const auto base = reinterpret_cast<std::uintptr_t>(fresh.data.get());
  const std::size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
  fresh.used = aligned + bytes;
  return fresh.data.get() + aligned;
}

}  // namespace wsnlink::util
