// Deterministic random number generation for the simulator.
//
// Every stochastic component in wsnlink draws from an explicitly seeded
// generator so that an experiment is reproducible bit-for-bit from its seed.
// We implement xoshiro256++ (Blackman & Vigna) rather than using
// std::mt19937_64 because (a) the stream-splitting discipline below needs a
// cheap, well-understood jump/derive function, and (b) the standard library
// does not guarantee identical distribution output across implementations,
// which would make golden tests non-portable.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace wsnlink::util {

class RngLanes;

/// xoshiro256++ PRNG with SplitMix64 seeding.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, but the
/// distribution helpers on this class (not std::* distributions) must be used
/// when cross-platform reproducibility matters.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept;

  /// Derives an independent child generator for a named subsystem.
  ///
  /// The derivation hashes the parent's seed lineage with `stream_id`, so two
  /// children with different ids have unrelated streams, and the same
  /// (seed, id) pair always produces the same child. This lets e.g. the
  /// channel and the MAC consume randomness without perturbing each other
  /// when one of them changes how much it draws.
  [[nodiscard]] Rng Derive(std::uint64_t stream_id) const noexcept;

  /// Convenience overload hashing a label such as "noise-floor".
  [[nodiscard]] Rng Derive(std::string_view label) const noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (deterministic: no cached spare).
  double Gaussian() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) noexcept;

  /// Exponential with the given mean (> 0).
  double Exponential(double mean) noexcept;

  /// Batched draws from THIS stream: fills `out` with out.size() successive
  /// values, bit-identical to calling the scalar method that many times.
  /// The batch forms keep the generator state in registers across the run
  /// of draws, which is what lets the compiler pipeline/vectorize the
  /// integer recurrence.
  void Fill(std::span<std::uint64_t> out) noexcept;
  void FillDoubles(std::span<double> out) noexcept;
  /// Standard-normal batch (two uniform draws per output, like Gaussian()).
  void FillGaussians(std::span<double> out) noexcept;

 private:
  friend class RngLanes;
  explicit Rng(std::array<std::uint64_t, 4> state, std::uint64_t lineage) noexcept
      : state_(state), lineage_(lineage) {}

  std::array<std::uint64_t, 4> state_{};
  // Hash of the seed/stream-id path from the root generator; used by Derive.
  std::uint64_t lineage_ = 0;
};

/// Structure-of-arrays bank of K independent xoshiro256++ streams advanced
/// in lockstep — the SIMD substrate for batched channel evaluation.
///
/// Each lane is one Rng; NextAll()/NextDoubleAll()/GaussianAll() advance
/// every lane by exactly the draws the scalar method performs, as plain
/// elementwise loops over the four state arrays (auto-vectorizable, no
/// intrinsics). Lane i's output sequence is bit-identical to the scalar
/// Rng it was constructed from, so per-config results never depend on
/// whether the batch or the scalar path produced them.
class RngLanes {
 public:
  /// One lane per input generator (lineage is captured for Extract()).
  explicit RngLanes(std::span<const Rng> rngs);

  [[nodiscard]] std::size_t Size() const noexcept { return lineage_.size(); }

  /// One operator() draw per lane. Requires out.size() == Size().
  void NextAll(std::span<std::uint64_t> out) noexcept;

  /// One NextDouble() per lane. Requires out.size() == Size().
  void NextDoubleAll(std::span<double> out) noexcept;

  /// One standard-normal Gaussian() per lane (two uniform draws each).
  /// Requires out.size() == Size().
  void GaussianAll(std::span<double> out) noexcept;

  /// Reconstructs lane `lane` as a scalar Rng carrying the lane's current
  /// state — the round-trip that lets tests pin scalar/SoA equivalence.
  [[nodiscard]] Rng Extract(std::size_t lane) const noexcept;

 private:
  // xoshiro state transposed: s_[w][lane] is word w of lane's state.
  std::array<std::vector<std::uint64_t>, 4> s_;
  std::vector<std::uint64_t> lineage_;
};

/// SplitMix64 step; exposed for hashing small keys into stream ids.
[[nodiscard]] std::uint64_t SplitMix64(std::uint64_t& state) noexcept;

/// FNV-1a hash of a label, for Derive(string_view).
[[nodiscard]] std::uint64_t HashLabel(std::string_view label) noexcept;

}  // namespace wsnlink::util
