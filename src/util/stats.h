// Descriptive statistics and least-squares fitting primitives.
//
// These are the numeric workhorses behind the paper's data analysis: per-
// configuration metric summaries (mean/stddev/percentiles), the log-normal
// path-loss fit of Fig. 3, and the exponential model fits of Figs. 11-12
// (via log-linearised linear regression and Gauss-Newton refinement in
// core/fit).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace wsnlink::util {

/// Streaming accumulator for mean/variance/min/max (Welford's algorithm).
///
/// Numerically stable for long streams (the campaign feeds hundreds of
/// millions of per-packet samples through these).
class RunningStats {
 public:
  void Add(double x) noexcept;

  /// Merges another accumulator (parallel-reduction friendly).
  void Merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t Count() const noexcept { return n_; }
  [[nodiscard]] bool Empty() const noexcept { return n_ == 0; }

  /// Mean of the samples. Requires Count() > 0.
  [[nodiscard]] double Mean() const;

  /// Unbiased sample variance. Requires Count() > 1 (returns 0 for n==1).
  [[nodiscard]] double Variance() const;

  /// Sample standard deviation (sqrt of Variance()).
  [[nodiscard]] double StdDev() const;

  /// Minimum / maximum sample. Requires Count() > 0.
  [[nodiscard]] double Min() const;
  [[nodiscard]] double Max() const;

  [[nodiscard]] double Sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a span. Requires non-empty input.
[[nodiscard]] double Mean(std::span<const double> xs);

/// Sample standard deviation of a span (0 for fewer than 2 samples).
[[nodiscard]] double StdDev(std::span<const double> xs);

/// p-quantile (0 <= p <= 1) with linear interpolation between order
/// statistics. Copies and sorts internally. Requires non-empty input.
[[nodiscard]] double Quantile(std::span<const double> xs, double p);

/// Quantile variant that selects directly in the caller's buffer (which is
/// permuted, not sorted) — the zero-alloc path. Value-identical to
/// Quantile on the same multiset, including across repeated calls on the
/// same (re-permuted) buffer. Requires non-empty input.
[[nodiscard]] double QuantileInPlace(std::span<double> xs, double p);

/// Median (Quantile with p = 0.5).
[[nodiscard]] double Median(std::span<const double> xs);

/// Empirical CDF P(X <= t) of an ascending-sorted sample (right-continuous
/// step function). Requires non-empty, sorted input.
[[nodiscard]] double EmpiricalCdf(std::span<const double> sorted_xs, double t);

/// Empirical tail (CCDF) P(X > t) of an ascending-sorted sample.
[[nodiscard]] double EmpiricalCcdf(std::span<const double> sorted_xs, double t);

/// Half-width of the Dvoretzky-Kiefer-Wolfowitz confidence band: with
/// probability >= `confidence`, sup_t |F_n(t) - F(t)| <= eps for
/// eps = sqrt(ln(2 / (1 - confidence)) / (2 n)). Distribution-free — the
/// slack the cross-validation harness grants empirical CDFs before calling
/// an analytic bound violated. Requires n >= 1 and confidence in (0, 1).
[[nodiscard]] double DkwEpsilon(std::size_t n, double confidence);

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// DKW-derived confidence band for the p-quantile of a sorted sample:
/// [Quantile(p - eps), Quantile(p + eps)] with the band probabilities
/// clamped to [0, 1]. Requires non-empty sorted input, p in [0, 1].
[[nodiscard]] ConfidenceInterval DkwQuantileBand(
    std::span<const double> sorted_xs, double p, double confidence);

/// Percentile-bootstrap confidence interval for the p-quantile. Resamples
/// `resamples` times with replacement using the caller-seeded `rng` (fixed
/// seed => fixed interval; no ambient entropy). Requires non-empty input,
/// p in [0, 1], resamples >= 1 and confidence in (0, 1).
[[nodiscard]] ConfidenceInterval BootstrapQuantileCi(std::span<const double> xs,
                                                     double p, Rng rng,
                                                     int resamples = 200,
                                                     double confidence = 0.95);

/// Result of an ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect fit.
  double r_squared = 0.0;
  /// Root-mean-square of the residuals.
  double rmse = 0.0;
};

/// Ordinary least squares over paired samples.
///
/// Returns nullopt if fewer than 2 points or if x is degenerate (zero
/// variance), in which case no line is identifiable.
[[nodiscard]] std::optional<LinearFit> FitLine(std::span<const double> xs,
                                               std::span<const double> ys);

/// Pearson correlation coefficient. Returns nullopt on degenerate input.
[[nodiscard]] std::optional<double> Correlation(std::span<const double> xs,
                                                std::span<const double> ys);

/// Root-mean-square error between paired predictions and observations.
/// Requires equal, non-zero lengths.
[[nodiscard]] double Rmse(std::span<const double> predicted,
                          std::span<const double> observed);

/// Maximum absolute difference between paired values.
[[nodiscard]] double MaxAbsError(std::span<const double> predicted,
                                 std::span<const double> observed);

}  // namespace wsnlink::util
