#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace wsnlink::util {

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned count = std::max(1u, workers);
  queues_.resize(count);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  // wsnstatic:allow(lp-isolation): process-wide worker pool; it executes LP work but holds no simulation state itself
  static ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].tasks.push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  cv_.notify_one();
}

bool ThreadPool::PopOrSteal(unsigned self, std::function<void()>& task) {
  // Own queue first, newest-first: chunks submitted together run
  // back-to-back on the same worker. Then sweep the other queues
  // oldest-first (classic steal direction).
  if (!queues_[self].tasks.empty()) {
    task = std::move(queues_[self].tasks.back());
    queues_[self].tasks.pop_back();
    return true;
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = queues_[(self + offset) % queues_.size()];
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned self) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    std::function<void()> task;
    if (PopOrSteal(self, task)) {
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (stopping_) return;
    cv_.wait(lock);
  }
}

void ThreadPool::ParallelFor(std::size_t total, std::size_t chunk,
                             unsigned max_parallel,
                             const std::function<void(std::size_t)>& fn) {
  if (total == 0) return;
  if (chunk == 0) chunk = 1;
  const unsigned width = max_parallel == 0 ? WorkerCount() + 1 : max_parallel;
  const std::size_t chunks = (total + chunk - 1) / chunk;
  const unsigned helpers = static_cast<unsigned>(std::min<std::size_t>(
      width > 1 ? width - 1 : 0, std::min<std::size_t>(chunks, WorkerCount())));

  if (helpers == 0 || total <= chunk) {
    for (std::size_t i = 0; i < total; ++i) fn(i);
    return;
  }

  // Shared drain state: helpers and the caller grab chunk indices from the
  // cursor until exhausted. Completion is tracked per *chunk*, not per
  // helper task: the caller returns as soon as every chunk has run, even if
  // some helper tasks never got scheduled (they wake up later, find the
  // cursor exhausted, and exit without touching `fn`). That property makes
  // nested ParallelFor calls deadlock-free — a caller that drains every
  // chunk itself never waits on the pool.
  struct Drain {
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done_chunks{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto drain = std::make_shared<Drain>();

  auto run_chunks = [drain, total, chunk, chunks, &fn] {
    for (std::size_t c = drain->cursor.fetch_add(1); c < chunks;
         c = drain->cursor.fetch_add(1)) {
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(begin + chunk, total);
      for (std::size_t i = begin; i < end; ++i) fn(i);
      if (drain->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          chunks) {
        // Last chunk done: wake the caller. The lock pairs the notify with
        // the caller's wait so the wakeup cannot be lost.
        std::lock_guard<std::mutex> lock(drain->done_mutex);
        drain->done_cv.notify_one();
      }
    }
  };

  for (unsigned h = 0; h < helpers; ++h) Submit(run_chunks);

  run_chunks();

  std::unique_lock<std::mutex> lock(drain->done_mutex);
  drain->done_cv.wait(lock, [&drain, chunks] {
    return drain->done_chunks.load(std::memory_order_acquire) == chunks;
  });
}

}  // namespace wsnlink::util
