#include "util/fault_injection.h"

#include <stdexcept>

#include "util/rng.h"

namespace wsnlink::util {

namespace {

/// Deterministic per-operation coin flip: hash (seed, ordinal) to [0, 1).
double OrdinalUniform(std::uint64_t seed, std::uint64_t ordinal) {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (ordinal + 1));
  const std::uint64_t bits = SplitMix64(state);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultInjector::Arm(std::string_view site, Rule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.insert_or_assign(std::string(site), rule);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::FailAfter(std::string_view site, std::uint64_t after) {
  Rule rule;
  rule.kind = Kind::kAfter;
  rule.threshold = after;
  Arm(site, rule);
}

void FaultInjector::FailNth(std::string_view site, std::uint64_t nth) {
  Rule rule;
  rule.kind = Kind::kNth;
  rule.threshold = nth;
  Arm(site, rule);
}

void FaultInjector::FailWithProbability(std::string_view site,
                                        double probability,
                                        std::uint64_t seed) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument(
        "FaultInjector: probability must be in [0, 1]");
  }
  Rule rule;
  rule.kind = Kind::kProbability;
  rule.probability = probability;
  rule.seed = seed;
  Arm(site, rule);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(std::string_view site) {
  if (!Armed()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return false;
  Rule& rule = it->second;
  const std::uint64_t ordinal = rule.operations++;
  bool fail = false;
  switch (rule.kind) {
    case Kind::kAfter:
      fail = ordinal >= rule.threshold;
      break;
    case Kind::kNth:
      fail = ordinal == rule.threshold;
      break;
    case Kind::kProbability:
      fail = OrdinalUniform(rule.seed, ordinal) < rule.probability;
      break;
  }
  if (fail) ++rule.injected;
  return fail;
}

void FaultInjector::MaybeThrow(std::string_view site) {
  if (ShouldFail(site)) {
    throw InjectedFault("injected fault at " + std::string(site));
  }
}

std::uint64_t FaultInjector::Operations(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rules_.find(site);
  return it == rules_.end() ? 0 : it->second.operations;
}

std::uint64_t FaultInjector::Injected(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rules_.find(site);
  return it == rules_.end() ? 0 : it->second.injected;
}

FaultInjector& FaultInjector::Global() {
  // wsnstatic:allow(lp-isolation): test-only fault-injection registry, mutex-guarded; disabled (empty) in production runs
  static FaultInjector injector;
  return injector;
}

}  // namespace wsnlink::util
