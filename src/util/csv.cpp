#include "util/csv.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "util/fault_injection.h"

namespace wsnlink::util {

std::string EscapeCsvCell(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : out_(path), path_(path), columns_(headers.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (headers.empty()) throw std::invalid_argument("CsvWriter: no headers");
  WriteCells(headers);
}

CsvWriter::~CsvWriter() {
  // Best-effort close: errors here are invisible (destructors must not
  // throw). Callers that need the disk-full guarantee call Close().
  try {
    Close();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: cell count != header count");
  }
  if (closed_) throw std::logic_error("CsvWriter: write after Close()");
  WriteCells(cells);
  ++rows_;
}

void CsvWriter::Close() {
  if (closed_) return;
  closed_ = true;
  out_.flush();
  if (FaultInjector::Global().Armed() &&
      FaultInjector::Global().ShouldFail("csv.close")) {
    out_.setstate(std::ios::failbit);
  }
  ThrowIfBad("flush");
  out_.close();
  ThrowIfBad("close");
}

void CsvWriter::WriteCells(const std::vector<std::string>& cells) {
  // A lone empty cell would serialise to an empty line, which CSV readers
  // (this one included) drop as a blank; quote it so the row survives a
  // round trip.
  if (cells.size() == 1 && cells[0].empty()) {
    out_ << "\"\"\n";
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << EscapeCsvCell(cells[i]);
    }
    out_ << '\n';
  }
  // ENOSPC model for the robustness tests: an injected failure behaves
  // exactly like the stream reporting a short write.
  if (FaultInjector::Global().Armed() &&
      FaultInjector::Global().ShouldFail("csv.write")) {
    out_.setstate(std::ios::failbit);
  }
  ThrowIfBad("write");
}

void CsvWriter::ThrowIfBad(const char* action) {
  if (!out_) {
    throw std::runtime_error(std::string("CsvWriter: ") + action +
                             " failed for " + path_ +
                             " (disk full or I/O error?)");
  }
}

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> cells;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

namespace {

/// Reads one logical CSV record: physical lines are joined (with the '\n'
/// they were split on) while an unclosed quote is open, and any trailing
/// '\r' from CRLF files is stripped per physical line. Returns false at
/// end of input; throws if the input ends inside a quoted cell.
bool ReadCsvRecord(std::istream& in, std::string& record) {
  std::string line;
  if (!std::getline(in, line)) return false;
  record.clear();
  for (;;) {
    const bool had_cr = !line.empty() && line.back() == '\r';
    if (had_cr) line.pop_back();
    record += line;
    // An even number of quote characters means every quoted cell in the
    // record is closed (escaped "" quotes contribute two), so the line
    // break really terminated the record and any CR was CRLF framing.
    if (std::count(record.begin(), record.end(), '"') % 2 == 0) return true;
    // Otherwise the break is *content* of an open quoted cell — put the
    // CR back before joining with the newline it was split on.
    if (had_cr) record += '\r';
    if (!std::getline(in, line)) {
      throw std::runtime_error("ReadCsv: unterminated quoted cell");
    }
    record += '\n';
  }
}

}  // namespace

CsvData ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ReadCsv: cannot open " + path);
  CsvData data;
  std::string record;
  if (ReadCsvRecord(in, record)) data.headers = ParseCsvLine(record);
  while (ReadCsvRecord(in, record)) {
    if (record.empty()) continue;
    data.rows.push_back(ParseCsvLine(record));
  }
  return data;
}

std::size_t CsvData::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (headers[i] == name) return i;
  }
  throw std::out_of_range("CsvData: no column named " + std::string(name));
}

std::vector<double> CsvData::NumericColumn(std::string_view name) const {
  const std::size_t col = ColumnIndex(name);
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) {
    if (col >= row.size()) throw std::runtime_error("CsvData: short row");
    const std::string& cell = row[col];
    double v{};
    const auto [ptr, ec] =
        std::from_chars(cell.data(), cell.data() + cell.size(), v);
    if (ec != std::errc() || ptr != cell.data() + cell.size()) {
      throw std::runtime_error("CsvData: non-numeric cell '" + cell + "'");
    }
    values.push_back(v);
  }
  return values;
}

}  // namespace wsnlink::util
