// Monotonic arena for per-run scratch objects.
//
// The sweep inner loop rebuilds the whole node stack (channel, MAC, link
// layer, traffic source) for every configuration. Allocating those objects
// individually costs a handful of heap round-trips per run; the arena bumps
// them out of reusable chunks instead, so after the first run a worker's
// stack assembly touches the heap zero times. Reset() destroys the
// registered objects in reverse construction order (construction order is
// dependency order: generator references link references mac references
// channel) and rewinds the chunks without freeing them.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace wsnlink::util {

/// Chunked bump allocator with LIFO destruction on Reset().
class MonotonicArena {
 public:
  /// `chunk_bytes` is the default chunk size; oversized requests get a
  /// dedicated chunk of their own size.
  explicit MonotonicArena(std::size_t chunk_bytes = 16 * 1024) noexcept
      : chunk_bytes_(chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  ~MonotonicArena() { DestroyAll(); }

  /// Constructs a T in arena storage. The object is destroyed (in reverse
  /// construction order across all New calls) at the next Reset() or at
  /// arena destruction — never individually.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(DtorRecord{obj, [](void* p) noexcept {
                                    static_cast<T*>(p)->~T();
                                  }});
    }
    return obj;
  }

  /// Raw aligned storage from the current chunk (bump pointer). Grows by a
  /// new chunk only when every retained chunk is exhausted, so steady-state
  /// reuse after Reset() performs no heap allocation.
  void* Allocate(std::size_t bytes, std::size_t align);

  /// Destroys every object registered since the last Reset() in reverse
  /// construction order, then rewinds all chunks (keeping their storage).
  void Reset() noexcept {
    DestroyAll();
    for (Chunk& chunk : chunks_) chunk.used = 0;
    active_ = 0;
  }

  /// Number of chunks currently retained (steady state: constant).
  [[nodiscard]] std::size_t ChunkCount() const noexcept {
    return chunks_.size();
  }

  /// Bytes currently bumped across all chunks.
  [[nodiscard]] std::size_t BytesUsed() const noexcept {
    std::size_t used = 0;
    for (const Chunk& chunk : chunks_) used += chunk.used;
    return used;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  struct DtorRecord {
    void* object;
    void (*destroy)(void*) noexcept;
  };

  void DestroyAll() noexcept {
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->destroy(it->object);
    }
    dtors_.clear();
  }

  std::vector<Chunk> chunks_;
  std::vector<DtorRecord> dtors_;
  std::size_t active_ = 0;  // index of the chunk currently being bumped
  std::size_t chunk_bytes_;
};

}  // namespace wsnlink::util
