#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace wsnlink::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
}

void Histogram::Add(double x) noexcept { Add(x, 1); }

void Histogram::Add(double x, std::size_t weight) noexcept {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard against FP edge at hi_
  counts_[idx] += weight;
}

std::size_t Histogram::Count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::Count");
  return counts_[i];
}

double Histogram::BinLow(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::BinLow");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BinCenter(std::size_t i) const {
  return BinLow(i) + width_ / 2.0;
}

double Histogram::Fraction(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::Fraction");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::CdfAtBin(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::CdfAtBin");
  std::size_t below = underflow_;
  for (std::size_t k = 0; k <= i; ++k) below += counts_[k];
  if (total_ == 0) return 0.0;
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::size_t Histogram::ModeBin() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  if (it == counts_.end() || *it == 0) {
    throw std::logic_error("Histogram::ModeBin: no in-range samples");
  }
  return static_cast<std::size_t>(it - counts_.begin());
}

std::string Histogram::ToAscii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%10.2f | ", BinCenter(i));
    out += line;
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(max_width));
    out.append(bar, '#');
    std::snprintf(line, sizeof(line), " %zu\n", counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace wsnlink::util
