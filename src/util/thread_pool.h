// Shared work-stealing thread pool for the sweep/campaign executors.
//
// The previous executors spawned a fresh std::thread fleet for every sweep;
// a campaign that runs thousands of small sweeps paid thread creation and
// teardown each time, and nested drivers (replication studies, adaptive
// tuning loops) multiplied it. This pool is created once per process
// (ThreadPool::Shared()), keeps one worker per hardware thread parked on a
// condition variable, and hands out work in batched index chunks.
//
// Design:
//  - each worker owns a deque; submitted tasks are distributed round-robin,
//    a worker pops its own deque LIFO and steals FIFO from the others when
//    empty, so bursts submitted together stay cache-warm on one worker
//    while idle workers still drain the backlog;
//  - ParallelFor is the executor entry point: the *calling* thread
//    participates in the loop, which both saves a context switch for small
//    totals and makes nested ParallelFor calls deadlock-free by
//    construction (the caller can always make progress on its own);
//  - determinism: ParallelFor imposes no ordering — callers must make
//    `fn(i)` independent of execution order (the sweep drivers derive
//    per-index seeds and write results into per-index slots, which is what
//    keeps sweeps bit-identical under any worker count or chunking).
//
// All cross-thread state is guarded by mutexes/atomics; the pool is
// TSan-clean (exercised by tests/determinism_test.cpp and the perf
// invariance suite under -DWSNLINK_SANITIZE=thread).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsnlink::util {

/// A fixed-size work-stealing thread pool.
class ThreadPool {
 public:
  /// Creates `workers` parked worker threads (at least 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool used by the sweep/campaign executors. Created on
  /// first use with one worker per hardware thread (minimum 2, so the
  /// stealing path is exercised even on single-core hosts).
  static ThreadPool& Shared();

  [[nodiscard]] unsigned WorkerCount() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Runs `fn(i)` for every i in [0, total) with bounded parallelism.
  ///
  /// Work is handed out in contiguous `chunk`-sized index ranges through a
  /// shared cursor. At most `max_parallel` threads are active (the caller
  /// plus up to max_parallel-1 pool workers); 0 means "pool width". The
  /// call returns when every index has been processed. `fn` is invoked
  /// concurrently and must be thread-safe; results must not depend on
  /// execution order.
  void ParallelFor(std::size_t total, std::size_t chunk, unsigned max_parallel,
                   const std::function<void(std::size_t)>& fn);

 private:
  struct Queue {
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(unsigned self);
  bool PopOrSteal(unsigned self, std::function<void()>& task);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Queue> queues_;
  std::vector<std::thread> workers_;
  unsigned next_queue_ = 0;
  bool stopping_ = false;
};

}  // namespace wsnlink::util
