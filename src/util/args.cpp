#include "util/args.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace wsnlink::util {

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& switches) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    if (std::find(switches.begin(), switches.end(), arg) != switches.end()) {
      switches_given_.push_back(arg);
      continue;
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument("missing value for " + arg);
    }
    const std::string value = argv[i + 1];
    if (value.rfind("--", 0) == 0) {
      // `--flag --other` means --flag's value is missing, not that the
      // next flag is its value.
      throw std::invalid_argument("missing value for " + arg);
    }
    if (values_.count(arg) != 0) {
      throw std::invalid_argument("duplicate flag " + arg);
    }
    values_[arg] = value;
    ++i;
  }
}

bool Args::Has(const std::string& flag) const {
  return std::find(switches_given_.begin(), switches_given_.end(), flag) !=
         switches_given_.end();
}

std::optional<std::string> Args::Get(const std::string& flag) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::GetString(const std::string& flag,
                            const std::string& fallback) const {
  return Get(flag).value_or(fallback);
}

double Args::GetDouble(const std::string& flag, double fallback) const {
  const auto value = Get(flag);
  if (!value) return fallback;
  double parsed = 0.0;
  if (!ParseCanonicalDouble(*value, parsed)) {
    throw std::invalid_argument("bad numeric value for " + flag + ": " + *value);
  }
  return parsed;
}

int Args::GetInt(const std::string& flag, int fallback) const {
  const auto value = Get(flag);
  if (!value) return fallback;
  std::size_t consumed = 0;
  const int parsed = std::stoi(*value, &consumed);
  if (consumed != value->size()) {
    throw std::invalid_argument("bad integer value for " + flag + ": " + *value);
  }
  return parsed;
}

int Args::GetPositiveInt(const std::string& flag, int fallback) const {
  const auto value = Get(flag);
  if (!value) return fallback;
  try {
    return ParsePositiveInt(*value, flag);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("bad positive integer for " + flag + ": " +
                                *value);
  }
}

int ParsePositiveInt(const std::string& value, const std::string& what) {
  std::size_t consumed = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad positive integer for " + what + ": '" +
                                value + "'");
  }
  if (consumed != value.size() || parsed < 1) {
    throw std::invalid_argument("bad positive integer for " + what + ": '" +
                                value + "'");
  }
  return parsed;
}

bool ParseCanonicalDouble(std::string_view text, double& out) noexcept {
  if (text.empty()) return false;
  // Character filter first: anything outside the plain decimal/scientific
  // alphabet is rejected before from_chars gets a say. This closes the
  // strtod-family extensions in one place — leading whitespace, hex floats
  // ("0x1p3") and the "inf"/"nan" spellings all contain a foreign byte.
  for (const char c : text) {
    const bool allowed = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                         c == 'E' || c == '+' || c == '-';
    if (!allowed) return false;
  }
  double parsed{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || ptr != end) return false;
  // from_chars reports overflow via errc::result_out_of_range, so this is
  // belt and braces; it documents the finite-only contract either way.
  if (!std::isfinite(parsed)) return false;
  out = parsed;
  return true;
}

double ParseDouble(const std::string& value, const std::string& what) {
  double parsed = 0.0;
  if (!ParseCanonicalDouble(value, parsed)) {
    throw std::invalid_argument("bad number for " + what + ": '" + value +
                                "'");
  }
  return parsed;
}

std::size_t Args::GetSize(const std::string& flag, std::size_t fallback) const {
  const auto value = Get(flag);
  if (!value) return fallback;
  if (!value->empty() && value->front() == '-') {
    // stoull would silently wrap a negative value around to a huge size.
    throw std::invalid_argument("bad size value for " + flag + ": " + *value);
  }
  std::size_t consumed = 0;
  const unsigned long long parsed = std::stoull(*value, &consumed);
  if (consumed != value->size()) {
    throw std::invalid_argument("bad size value for " + flag + ": " + *value);
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace wsnlink::util
