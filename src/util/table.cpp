#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace wsnlink::util {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

TextTable& TextTable::NewRow() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::Add(std::string cell) {
  if (rows_.empty()) NewRow();
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("TextTable: row has more cells than headers");
  }
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::Add(const char* cell) { return Add(std::string(cell)); }

TextTable& TextTable::Add(double value, int precision) {
  return Add(FormatDouble(value, precision));
}

TextTable& TextTable::Add(int value) { return Add(std::to_string(value)); }
TextTable& TextTable::Add(long value) { return Add(std::to_string(value)); }
TextTable& TextTable::Add(unsigned long value) { return Add(std::to_string(value)); }

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += cell;
      if (c + 1 < headers_.size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
  };

  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  const auto quote = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (const char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      out += quote(cells[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.ToString();
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace wsnlink::util
