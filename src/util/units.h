// Power / energy unit conversions.
//
// The channel works in dBm (logarithmic) while energy bookkeeping works in
// milliwatts and microjoules; keeping the conversions in one place avoids the
// classic dBm-vs-dB bugs.
#pragma once

namespace wsnlink::util {

/// Converts power in dBm to milliwatts.
[[nodiscard]] double DbmToMilliwatt(double dbm) noexcept;

/// Converts power in milliwatts to dBm. Requires mw > 0.
[[nodiscard]] double MilliwattToDbm(double mw);

/// Adds two powers expressed in dBm (i.e. converts to linear, sums, and
/// converts back). Used to combine noise floor and interference.
[[nodiscard]] double AddPowersDbm(double a_dbm, double b_dbm);

/// Ratio of two powers in dB: signal_dbm - noise_dbm.
[[nodiscard]] constexpr double SnrDb(double signal_dbm, double noise_dbm) noexcept {
  return signal_dbm - noise_dbm;
}

/// Converts a dB value to a linear ratio.
[[nodiscard]] double DbToLinear(double db) noexcept;

/// Converts a linear ratio to dB. Requires ratio > 0.
[[nodiscard]] double LinearToDb(double ratio);

constexpr double kMicrosecondsPerSecond = 1e6;
constexpr double kBitsPerByte = 8.0;

}  // namespace wsnlink::util
