// Fixed-width-bin histogram used for the distribution figures (noise floor /
// SNR distributions of Fig. 5) and for latency distributions in the metrics
// layer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsnlink::util {

/// Histogram over [lo, hi) with `bins` equal-width bins plus underflow and
/// overflow counters.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x) noexcept;

  /// Adds `weight` occurrences of x (weight >= 0).
  void Add(double x, std::size_t weight) noexcept;

  [[nodiscard]] std::size_t BinCount() const noexcept { return counts_.size(); }
  [[nodiscard]] double Lo() const noexcept { return lo_; }
  [[nodiscard]] double Hi() const noexcept { return hi_; }
  [[nodiscard]] double BinWidth() const noexcept { return width_; }

  /// Count in bin i (0-based). Requires i < BinCount().
  [[nodiscard]] std::size_t Count(std::size_t i) const;

  /// Lower edge / centre of bin i.
  [[nodiscard]] double BinLow(std::size_t i) const;
  [[nodiscard]] double BinCenter(std::size_t i) const;

  [[nodiscard]] std::size_t Underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t Overflow() const noexcept { return overflow_; }

  /// Total samples, including under/overflow.
  [[nodiscard]] std::size_t Total() const noexcept { return total_; }

  /// Fraction of all samples falling in bin i (0 if Total() == 0).
  [[nodiscard]] double Fraction(std::size_t i) const;

  /// Empirical CDF evaluated at the upper edge of bin i (under/overflow
  /// included in the total).
  [[nodiscard]] double CdfAtBin(std::size_t i) const;

  /// Index of the most populated bin. Requires at least one in-range sample.
  [[nodiscard]] std::size_t ModeBin() const;

  /// Renders a compact ASCII bar chart (one line per bin), for bench output.
  [[nodiscard]] std::string ToAscii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace wsnlink::util
