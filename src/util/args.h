// Minimal command-line flag parser for the example/tool binaries.
//
// Supports `--flag value` options (string/double/int/size_t), boolean
// switches (`--verify`), and positional arguments. Unknown flags produce an
// error with the usage line, matching what the tools previously hand-rolled
// four times over.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wsnlink::util {

/// Parsed command line.
class Args {
 public:
  /// Parses argv. `switches` lists flags that take no value. Throws
  /// std::invalid_argument on an unknown flag (not in `switches` and not
  /// followed by a value) or a flag missing its value.
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& switches = {});

  /// True if the boolean switch was given.
  [[nodiscard]] bool Has(const std::string& flag) const;

  /// Value of `--flag value`, or nullopt if absent.
  [[nodiscard]] std::optional<std::string> Get(const std::string& flag) const;

  /// Typed accessors with defaults. Throw std::invalid_argument when the
  /// value does not parse.
  [[nodiscard]] std::string GetString(const std::string& flag,
                                      const std::string& fallback) const;
  [[nodiscard]] double GetDouble(const std::string& flag,
                                 double fallback) const;
  [[nodiscard]] int GetInt(const std::string& flag, int fallback) const;
  [[nodiscard]] std::size_t GetSize(const std::string& flag,
                                    std::size_t fallback) const;

  /// Like GetInt but additionally rejects values < 1 (count-style flags:
  /// packets, tries, intervals). The fallback is not validated.
  [[nodiscard]] int GetPositiveInt(const std::string& flag, int fallback) const;

  /// Non-flag arguments in order.
  [[nodiscard]] const std::vector<std::string>& Positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> switches_given_;
  std::vector<std::string> positional_;
};

/// Parses a strictly positive integer from the *entire* string: "3" is
/// fine, "" / "abc" / "3x" / "0" / "-2" all throw std::invalid_argument
/// naming `what`. The validated replacement for raw std::atoi on
/// count-style positional arguments (atoi silently yields 0 on garbage).
[[nodiscard]] int ParsePositiveInt(const std::string& value,
                                   const std::string& what);

/// The one canonical number grammar for every double parser in the tree
/// (command-line flags, CSV cells, serve protocol fields): plain decimal or
/// scientific notation over the whole string, finite value. Returns false —
/// without touching `out` — for anything else, including the extensions the
/// C library parsers quietly accept: leading/trailing whitespace, hex
/// floats ("0x1p3"), "inf"/"nan" spellings, a leading '+', trailing
/// garbage, and overflow to infinity.
[[nodiscard]] bool ParseCanonicalDouble(std::string_view text,
                                        double& out) noexcept;

/// Parses a finite double from the *entire* string ("1.5", "-3e2"); "" /
/// "abc" / "1.5x" / "nan" / "inf" / "0x1p3" / " 1.5" all throw
/// std::invalid_argument naming `what`. Thin throwing wrapper over
/// ParseCanonicalDouble — the validated replacement for raw
/// std::strtod/atof (both silently accept trailing garbage, whitespace,
/// hex floats and non-finite values).
[[nodiscard]] double ParseDouble(const std::string& value,
                                 const std::string& what);

}  // namespace wsnlink::util
