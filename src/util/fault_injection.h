// Deterministic fault injection for robustness tests.
//
// Long campaigns die in ways unit tests never exercise by accident:
// ENOSPC mid-CSV, a worker task throwing halfway through a sweep, a crash
// between two checkpoint writes. This layer lets tests schedule those
// failures *on purpose* and deterministically: instrumented operations
// (CSV writes, checkpoint writes, sweep worker tasks) ask the process-wide
// injector whether their next operation should fail, and the injector
// answers from a per-site schedule armed by the test.
//
// Design constraints:
//  * Near-free when disarmed: the production path costs one relaxed atomic
//    load (Armed()); no locks, no map lookups.
//  * Deterministic: schedules are keyed to per-site operation ordinals
//    (FailNth / FailAfter) or to a seeded hash of the ordinal
//    (FailWithProbability), never to wall clock or thread identity. The
//    same schedule against the same serial operation stream fails the same
//    operations every run.
//  * Thread-safe: instrumented sites are hit concurrently from sweep
//    workers; ordinal accounting is mutex-guarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace wsnlink::util {

/// Thrown by MaybeThrow-style instrumentation points so tests (and the
/// graceful-degradation paths) can tell injected failures from real ones.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// Per-site failure schedules. One process-wide instance (Global()) serves
/// every instrumentation point; tests arm it through ScopedFaultInjection.
class FaultInjector {
 public:
  /// Every operation at `site` with ordinal >= `after` fails (ordinals
  /// count from 0). `after == 0` fails every operation — the disk-full
  /// model: once the disk is full, it stays full.
  void FailAfter(std::string_view site, std::uint64_t after);

  /// Exactly the operation with ordinal == `nth` fails — the partial-write
  /// / transient-error model.
  void FailNth(std::string_view site, std::uint64_t nth);

  /// Each operation fails independently with `probability`, decided by a
  /// seeded hash of the operation ordinal (deterministic given the seed
  /// and the site's serial operation order).
  void FailWithProbability(std::string_view site, double probability,
                           std::uint64_t seed);

  /// Drops every schedule and every ordinal count; disarms the fast path.
  void Clear();

  /// Called by an instrumentation point: counts one operation at `site`
  /// and returns true when the schedule says it must fail. Sites without a
  /// schedule never fail (and are not counted).
  [[nodiscard]] bool ShouldFail(std::string_view site);

  /// Throws InjectedFault when ShouldFail(site) says so.
  void MaybeThrow(std::string_view site);

  /// Operations seen / failures injected at `site` since the last Clear().
  [[nodiscard]] std::uint64_t Operations(std::string_view site) const;
  [[nodiscard]] std::uint64_t Injected(std::string_view site) const;

  /// True when any schedule is armed. The production fast path: check this
  /// before calling ShouldFail so disarmed runs pay one atomic load.
  [[nodiscard]] bool Armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// The process-wide injector every instrumentation point consults.
  [[nodiscard]] static FaultInjector& Global();

 private:
  enum class Kind { kAfter, kNth, kProbability };

  struct Rule {
    Kind kind = Kind::kAfter;
    std::uint64_t threshold = 0;
    double probability = 0.0;
    std::uint64_t seed = 0;
    std::uint64_t operations = 0;
    std::uint64_t injected = 0;
  };

  void Arm(std::string_view site, Rule rule);

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::map<std::string, Rule, std::less<>> rules_;
};

/// RAII guard for tests: clears the global injector on entry and exit so a
/// failing test can never leak an armed schedule into the next one.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { FaultInjector::Global().Clear(); }
  ~ScopedFaultInjection() { FaultInjector::Global().Clear(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  [[nodiscard]] FaultInjector& operator*() const noexcept {
    return FaultInjector::Global();
  }
  [[nodiscard]] FaultInjector* operator->() const noexcept {
    return &FaultInjector::Global();
  }
};

}  // namespace wsnlink::util
