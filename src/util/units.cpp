#include "util/units.h"

#include <cmath>
#include <stdexcept>

namespace wsnlink::util {

double DbmToMilliwatt(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }

double MilliwattToDbm(double mw) {
  if (mw <= 0.0) throw std::invalid_argument("MilliwattToDbm: power must be > 0");
  return 10.0 * std::log10(mw);
}

double AddPowersDbm(double a_dbm, double b_dbm) {
  return MilliwattToDbm(DbmToMilliwatt(a_dbm) + DbmToMilliwatt(b_dbm));
}

double DbToLinear(double db) noexcept { return std::pow(10.0, db / 10.0); }

double LinearToDb(double ratio) {
  if (ratio <= 0.0) throw std::invalid_argument("LinearToDb: ratio must be > 0");
  return 10.0 * std::log10(ratio);
}

}  // namespace wsnlink::util
