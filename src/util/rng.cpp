// wsnlint:hot-path — part of the per-config inner loop; the zero-alloc
// invariant (docs/PERF.md) is linted here and measured by perf_sweep.
#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace wsnlink::util {

namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t HashLabel(std::string_view label) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept : lineage_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

Rng Rng::Derive(std::uint64_t stream_id) const noexcept {
  // Mix lineage and stream id through SplitMix64 twice to decorrelate.
  std::uint64_t sm = lineage_ ^ (stream_id * 0xD1342543DE82EF95ULL);
  const std::uint64_t child_seed = SplitMix64(sm) ^ SplitMix64(sm);
  return Rng(child_seed);
}

Rng Rng::Derive(std::string_view label) const noexcept {
  return Derive(HashLabel(label));
}

double Rng::NextDouble() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t draw{};
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Gaussian() noexcept {
  // Box-Muller without caching the second variate, so the draw count per
  // call is fixed and streams stay aligned across code changes.
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double sigma) noexcept {
  return mean + sigma * Gaussian();
}

bool Rng::Bernoulli(double p) noexcept {
  if (p <= 0.0) {
    (*this)();  // keep draw count constant regardless of p
    return false;
  }
  if (p >= 1.0) {
    (*this)();
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double mean) noexcept {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

void Rng::Fill(std::span<std::uint64_t> out) noexcept {
  // Local copies keep the four state words in registers for the whole
  // batch; the recurrence below is the scalar operator() verbatim.
  std::uint64_t s0 = state_[0], s1 = state_[1], s2 = state_[2], s3 = state_[3];
  for (std::uint64_t& slot : out) {
    slot = RotL(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = RotL(s3, 45);
  }
  state_ = {s0, s1, s2, s3};
}

void Rng::FillDoubles(std::span<double> out) noexcept {
  std::uint64_t s0 = state_[0], s1 = state_[1], s2 = state_[2], s3 = state_[3];
  for (double& slot : out) {
    const std::uint64_t bits = RotL(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = RotL(s3, 45);
    slot = static_cast<double>(bits >> 11) * 0x1.0p-53;
  }
  state_ = {s0, s1, s2, s3};
}

void Rng::FillGaussians(std::span<double> out) noexcept {
  // Same u1/u2 draw order as the scalar Gaussian(), one pair per output.
  for (double& slot : out) slot = Gaussian();
}

RngLanes::RngLanes(std::span<const Rng> rngs) {
  lineage_.reserve(rngs.size());
  for (auto& word : s_) word.reserve(rngs.size());
  for (const Rng& rng : rngs) {
    for (std::size_t w = 0; w < 4; ++w) s_[w].push_back(rng.state_[w]);
    lineage_.push_back(rng.lineage_);
  }
}

void RngLanes::NextAll(std::span<std::uint64_t> out) noexcept {
  std::uint64_t* s0 = s_[0].data();
  std::uint64_t* s1 = s_[1].data();
  std::uint64_t* s2 = s_[2].data();
  std::uint64_t* s3 = s_[3].data();
  const std::size_t n = lineage_.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = RotL(s0[i] + s3[i], 23) + s0[i];
    const std::uint64_t t = s1[i] << 17;
    s2[i] ^= s0[i];
    s3[i] ^= s1[i];
    s1[i] ^= s2[i];
    s0[i] ^= s3[i];
    s2[i] ^= t;
    s3[i] = RotL(s3[i], 45);
  }
}

void RngLanes::NextDoubleAll(std::span<double> out) noexcept {
  std::uint64_t* s0 = s_[0].data();
  std::uint64_t* s1 = s_[1].data();
  std::uint64_t* s2 = s_[2].data();
  std::uint64_t* s3 = s_[3].data();
  const std::size_t n = lineage_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = RotL(s0[i] + s3[i], 23) + s0[i];
    const std::uint64_t t = s1[i] << 17;
    s2[i] ^= s0[i];
    s3[i] ^= s1[i];
    s1[i] ^= s2[i];
    s0[i] ^= s3[i];
    s2[i] ^= t;
    s3[i] = RotL(s3[i], 45);
    out[i] = static_cast<double>(bits >> 11) * 0x1.0p-53;
  }
}

void RngLanes::GaussianAll(std::span<double> out) noexcept {
  // Two uniform sweeps (u1 then u2 per lane, in the scalar draw order:
  // each lane draws its own u1 and u2 consecutively — and since the lanes
  // are independent streams, sweeping u1 across all lanes and then u2
  // yields exactly the values the scalar per-lane order produces), then an
  // elementwise Box-Muller transform. The u1 sweep reuses `out` as scratch
  // so the transform stays a two-array loop.
  const std::size_t n = lineage_.size();
  NextDoubleAll(out);  // u1 per lane
  // The u2 draw must come from the SAME lane state after its u1 draw; a
  // second full sweep does exactly that.
  std::uint64_t* s0 = s_[0].data();
  std::uint64_t* s1 = s_[1].data();
  std::uint64_t* s2 = s_[2].data();
  std::uint64_t* s3 = s_[3].data();
  for (std::size_t i = 0; i < n; ++i) {
    double u1 = out[i];
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const std::uint64_t bits = RotL(s0[i] + s3[i], 23) + s0[i];
    const std::uint64_t t = s1[i] << 17;
    s2[i] ^= s0[i];
    s3[i] ^= s1[i];
    s1[i] ^= s2[i];
    s0[i] ^= s3[i];
    s2[i] ^= t;
    s3[i] = RotL(s3[i], 45);
    const double u2 = static_cast<double>(bits >> 11) * 0x1.0p-53;
    out[i] = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * std::numbers::pi * u2);
  }
}

Rng RngLanes::Extract(std::size_t lane) const noexcept {
  return Rng({s_[0][lane], s_[1][lane], s_[2][lane], s_[3][lane]},
             lineage_[lane]);
}

}  // namespace wsnlink::util
