#include "link/packet_log.h"

// PacketLog is header-only data; dataset serialisation lives in
// experiment/dataset.*. This translation unit intentionally only anchors
// the library target.
