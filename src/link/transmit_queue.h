// Bounded FIFO transmit queue on top of the MAC (the paper's Q_max knob).
//
// Semantics: the queue holds every packet the stack has accepted but not
// finished — the in-service packet occupies one slot. Q_max = 1 therefore
// means "no queue": while one packet is in service, any arrival is dropped.
// Q_max = 30 buffers 29 waiting packets behind the in-service one. Drops are
// counted for the PLR_queue metric.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/time.h"
#include "trace/counters.h"

namespace wsnlink::link {

/// Entry waiting for service.
struct QueuedPacket {
  std::uint64_t id = 0;
  int payload_bytes = 0;
  sim::Time arrived_at = 0;
};

/// Bounded FIFO with an explicit in-service slot.
///
/// Storage is a fixed ring of `capacity` slots (the bound is the point of
/// the queue), sized once at construction — no per-packet allocation.
class TransmitQueue {
 public:
  /// Requires capacity >= 1 (capacity counts the in-service slot).
  explicit TransmitQueue(int capacity);

  /// Scratch-mode constructor: the ring lives in `*storage` (resized to
  /// `capacity` here, reusing its heap block across runs — the sweep
  /// worker's recycling hook). The pointee must outlive the queue; nullptr
  /// falls back to the queue's own storage.
  TransmitQueue(int capacity, std::vector<QueuedPacket>* storage);

  // The ring pointer may refer to own_storage_, so moves would dangle.
  TransmitQueue(const TransmitQueue&) = delete;
  TransmitQueue& operator=(const TransmitQueue&) = delete;

  /// Total occupancy: waiting packets plus the in-service packet.
  [[nodiscard]] int Occupancy() const noexcept;

  /// True if an arrival right now would be dropped.
  [[nodiscard]] bool Full() const noexcept;

  /// Offers an arrival. Returns false (and counts a drop) when full.
  bool Offer(const QueuedPacket& packet);

  /// True if a packet is currently in service.
  [[nodiscard]] bool InService() const noexcept { return in_service_; }

  /// Moves the head waiting packet into service and returns it.
  /// Requires !InService() and a non-empty waiting queue.
  QueuedPacket StartService();

  /// True if any packet is waiting (not counting in-service).
  [[nodiscard]] bool HasWaiting() const noexcept { return count_ > 0; }

  /// Marks the in-service packet finished. Requires InService().
  void FinishService();

  [[nodiscard]] int Capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t Drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t Accepted() const noexcept { return accepted_; }

  /// Mirrors the accept/drop counters into `registry` as "queue.accepted" /
  /// "queue.drops" so queue-loss observability rides the same snapshot
  /// pipeline as every other layer (the paper's rho-driven PLR_queue
  /// analysis reads these from campaign roll-ups). Any counts accumulated
  /// before attaching are carried over; nullptr detaches.
  void AttachCounters(trace::CounterRegistry* registry);

  /// Occupancy, tallies and a copy of the ring for speculative
  /// save/restore. The ring is fixed-capacity, so the copy reuses the
  /// image's storage across rounds (no steady-state allocation).
  struct State {
    std::vector<QueuedPacket> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    bool in_service = false;
    std::uint64_t drops = 0;
    std::uint64_t accepted = 0;
  };

  void SaveState(State& out) const {
    out.ring.assign(ring_->begin(), ring_->end());
    out.head = head_;
    out.count = count_;
    out.in_service = in_service_;
    out.drops = drops_;
    out.accepted = accepted_;
  }

  void RestoreState(const State& state) {
    ring_->assign(state.ring.begin(), state.ring.end());
    head_ = state.head;
    count_ = state.count;
    in_service_ = state.in_service;
    drops_ = state.drops;
    accepted_ = state.accepted;
  }

 private:
  // wsnstatic:transient(capacity_): queue bound fixed at construction; never mutated during a run
  int capacity_;
  // wsnstatic:transient(own_storage_): default backing store; live state sits behind ring_, which Save/Restore round-trip
  std::vector<QueuedPacket> own_storage_;
  std::vector<QueuedPacket>* ring_;  // &own_storage_ or caller-owned
  std::size_t head_ = 0;             // oldest waiting packet
  std::size_t count_ = 0;            // waiting packets (excl. in-service)
  bool in_service_ = false;
  std::uint64_t drops_ = 0;
  std::uint64_t accepted_ = 0;
  // wsnstatic:transient(counters_, id_accepted_, id_drops_): trace wiring fixed at attach time; counter rollback is handled by the caller, not the snapshot
  trace::CounterRegistry* counters_ = nullptr;
  trace::CounterRegistry::Id id_accepted_ = 0;
  trace::CounterRegistry::Id id_drops_ = 0;
};

}  // namespace wsnlink::link
