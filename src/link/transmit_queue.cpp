#include "link/transmit_queue.h"

namespace wsnlink::link {

TransmitQueue::TransmitQueue(int capacity) : capacity_(capacity) {
  if (capacity < 1) {
    throw std::invalid_argument("TransmitQueue: capacity must be >= 1");
  }
}

int TransmitQueue::Occupancy() const noexcept {
  return static_cast<int>(waiting_.size()) + (in_service_ ? 1 : 0);
}

bool TransmitQueue::Full() const noexcept { return Occupancy() >= capacity_; }

void TransmitQueue::AttachCounters(trace::CounterRegistry* registry) {
  counters_ = registry;
  if (counters_ == nullptr) return;
  id_accepted_ = counters_->Register("queue.accepted");
  id_drops_ = counters_->Register("queue.drops");
  if (accepted_ > 0) counters_->Add(id_accepted_, accepted_);
  if (drops_ > 0) counters_->Add(id_drops_, drops_);
}

bool TransmitQueue::Offer(const QueuedPacket& packet) {
  if (Full()) {
    ++drops_;
    if (counters_ != nullptr) counters_->Add(id_drops_);
    return false;
  }
  waiting_.push_back(packet);
  ++accepted_;
  if (counters_ != nullptr) counters_->Add(id_accepted_);
  return true;
}

QueuedPacket TransmitQueue::StartService() {
  if (in_service_) {
    throw std::logic_error("TransmitQueue::StartService: already serving");
  }
  if (waiting_.empty()) {
    throw std::logic_error("TransmitQueue::StartService: nothing waiting");
  }
  QueuedPacket head = waiting_.front();
  waiting_.pop_front();
  in_service_ = true;
  return head;
}

void TransmitQueue::FinishService() {
  if (!in_service_) {
    throw std::logic_error("TransmitQueue::FinishService: nothing in service");
  }
  in_service_ = false;
}

}  // namespace wsnlink::link
