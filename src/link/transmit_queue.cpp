#include "link/transmit_queue.h"

namespace wsnlink::link {

TransmitQueue::TransmitQueue(int capacity)
    : TransmitQueue(capacity, nullptr) {}

TransmitQueue::TransmitQueue(int capacity, std::vector<QueuedPacket>* storage)
    : capacity_(capacity),
      ring_(storage != nullptr ? storage : &own_storage_) {
  if (capacity < 1) {
    throw std::invalid_argument("TransmitQueue: capacity must be >= 1");
  }
  // `capacity` slots: while one packet is in service, up to capacity - 1
  // can wait; between Offer and StartService (nothing in service yet) the
  // waiting count itself can reach capacity.
  ring_->clear();
  ring_->resize(static_cast<std::size_t>(capacity_));
}

int TransmitQueue::Occupancy() const noexcept {
  return static_cast<int>(count_) + (in_service_ ? 1 : 0);
}

bool TransmitQueue::Full() const noexcept { return Occupancy() >= capacity_; }

void TransmitQueue::AttachCounters(trace::CounterRegistry* registry) {
  counters_ = registry;
  if (counters_ == nullptr) return;
  id_accepted_ = counters_->Register("queue.accepted");
  id_drops_ = counters_->Register("queue.drops");
  if (accepted_ > 0) counters_->Add(id_accepted_, accepted_);
  if (drops_ > 0) counters_->Add(id_drops_, drops_);
}

bool TransmitQueue::Offer(const QueuedPacket& packet) {
  if (Full()) {
    ++drops_;
    if (counters_ != nullptr) counters_->Add(id_drops_);
    return false;
  }
  const std::size_t cap = ring_->size();
  (*ring_)[(head_ + count_) % cap] = packet;
  ++count_;
  ++accepted_;
  if (counters_ != nullptr) counters_->Add(id_accepted_);
  return true;
}

QueuedPacket TransmitQueue::StartService() {
  if (in_service_) {
    throw std::logic_error("TransmitQueue::StartService: already serving");
  }
  if (count_ == 0) {
    throw std::logic_error("TransmitQueue::StartService: nothing waiting");
  }
  QueuedPacket head = (*ring_)[head_];
  head_ = (head_ + 1) % ring_->size();
  --count_;
  in_service_ = true;
  return head;
}

void TransmitQueue::FinishService() {
  if (!in_service_) {
    throw std::logic_error("TransmitQueue::FinishService: nothing in service");
  }
  in_service_ = false;
}

}  // namespace wsnlink::link
