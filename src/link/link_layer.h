// Link layer: glues the transmit queue to the MAC and writes the packet log.
//
// The application calls Accept() per generated packet; the link layer
// serves packets FIFO through the (single-packet-at-a-time) MAC, records the
// full lifecycle of every packet — including queue drops — and mirrors
// receiver-side delivery notifications into the log.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "link/packet_log.h"
#include "link/transmit_queue.h"
#include "mac/mac.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace wsnlink::link {

/// Sender-side link layer.
class LinkLayer {
 public:
  /// Fired for every decoded copy at the receiver (after logging), so the
  /// application sink can count deliveries.
  using DeliveryCallback = std::function<void(const mac::DeliveryInfo&)>;

  /// Caller-owned growable buffers for scratch-mode construction (the
  /// zero-alloc sweep worker's recycled heap blocks). Null members fall
  /// back to the link layer's own storage.
  struct Storage {
    std::vector<QueuedPacket>* queue = nullptr;
    std::vector<std::pair<std::uint64_t, std::size_t>>* open_records = nullptr;
  };

  /// `simulator` and `mac` must outlive the link layer. `queue_capacity`
  /// is the paper's Q_max (>= 1, counting the in-service slot).
  LinkLayer(sim::Simulator& simulator, mac::Mac& mac, int queue_capacity);

  /// Scratch-mode constructor: identical behaviour, but the queue ring and
  /// open-record table live in `storage`'s pointees (which must outlive the
  /// link layer; cleared here, capacity kept).
  LinkLayer(sim::Simulator& simulator, mac::Mac& mac, int queue_capacity,
            Storage storage);

  /// Accepts one application packet (payload in [1, 114]). Returns false if
  /// it was dropped at the queue.
  bool Accept(std::uint64_t packet_id, int payload_bytes);

  void SetDeliveryCallback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  /// Attaches observability sinks; the link layer emits the queue/service
  /// lifecycle events and maintains the "link.*" counters. Call before the
  /// first Accept(); the context's pointees must outlive the link layer.
  void AttachTrace(const trace::TraceContext& ctx);

  /// True once every accepted packet has completed (queue empty, MAC idle).
  [[nodiscard]] bool Idle() const noexcept;

  [[nodiscard]] const PacketLog& Log() const noexcept { return log_; }
  [[nodiscard]] PacketLog& MutableLog() noexcept { return log_; }
  [[nodiscard]] const TransmitQueue& Queue() const noexcept { return queue_; }

  /// Queue state, log high-water marks, deep copies of the records still
  /// open (only those can mutate after the snapshot) and the open-record
  /// table — everything a speculative rollback must rewind. Open entries
  /// are bounded by the queue capacity, so images stay small and reusable.
  struct State {
    TransmitQueue::State queue;
    std::size_t packets_size = 0;
    std::size_t attempts_size = 0;
    std::vector<std::pair<std::size_t, PacketRecord>> open_packets;
    std::vector<std::pair<std::uint64_t, std::size_t>> open_records;
    std::uint64_t in_service_id = 0;
  };

  void SaveState(State& out) const {
    queue_.SaveState(out.queue);
    out.packets_size = log_.Packets().size();
    out.attempts_size = log_.Attempts().size();
    out.open_records.assign(open_records_->begin(), open_records_->end());
    out.open_packets.clear();
    for (const OpenRecord& open : *open_records_) {
      out.open_packets.emplace_back(open.second, log_.Packets()[open.second]);
    }
    out.in_service_id = in_service_id_;
  }

  void RestoreState(const State& state) {
    queue_.RestoreState(state.queue);
    // Closed records never mutate again, so truncating the append tail and
    // rewriting the then-open records restores the log exactly.
    log_.Truncate(state.packets_size, state.attempts_size);
    for (const auto& [index, record] : state.open_packets) {
      log_.MutablePacket(index) = record;
    }
    open_records_->assign(state.open_records.begin(),
                          state.open_records.end());
    in_service_id_ = state.in_service_id;
  }

 private:
  void ServeNext();
  void OnSendDone(const mac::SendResult& result);
  void OnDelivery(const mac::DeliveryInfo& info);

  sim::Simulator& sim_;
  mac::Mac& mac_;
  TransmitQueue queue_;
  PacketLog log_;
  // wsnstatic:transient(on_delivery_): caller-supplied callback wiring fixed at construction; not simulation state
  DeliveryCallback on_delivery_;

  // Index into log_.Packets() for each unfinished packet id. Live entries
  // are bounded by the queue capacity (queued + in-service packets), so a
  // flat array with linear lookup beats a hash map on the packet hot path.
  using OpenRecord = std::pair<std::uint64_t, std::size_t>;
  // wsnstatic:transient(own_open_records_): default backing store; live state sits behind open_records_, which Save/Restore round-trip
  std::vector<OpenRecord> own_open_records_;
  std::vector<OpenRecord>* open_records_;  // &own_open_records_ or external
  [[nodiscard]] OpenRecord* FindOpen(std::uint64_t packet_id) noexcept;
  std::uint64_t in_service_id_ = 0;

  // Observability (null = off).
  // wsnstatic:transient(tracer_, counters_, node_, id_accepted_, id_queue_drops_, id_served_, id_completed_, id_acked_, id_deliveries_): trace wiring fixed at attach time; counter rollback is handled by the caller, not the snapshot
  trace::Tracer* tracer_ = nullptr;
  trace::CounterRegistry* counters_ = nullptr;
  std::int32_t node_ = 0;
  trace::CounterRegistry::Id id_accepted_ = 0;
  trace::CounterRegistry::Id id_queue_drops_ = 0;
  trace::CounterRegistry::Id id_served_ = 0;
  trace::CounterRegistry::Id id_completed_ = 0;
  trace::CounterRegistry::Id id_acked_ = 0;
  trace::CounterRegistry::Id id_deliveries_ = 0;
};

}  // namespace wsnlink::link
