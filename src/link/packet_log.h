// Per-packet metadata records — the schema of the paper's dataset.
//
// Both motes in the paper logged per-packet information (RSSI, LQI, time of
// receiving, actual transmission number, actual queue size, ...). The
// sender-side PacketRecord and the attempt-level AttemptRecord mirror that
// schema so the synthetic campaign can emit an equivalent dataset and so the
// metrics layer can compute every figure from raw logs rather than from
// simulator internals.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace wsnlink::link {

/// Sentinel for "never happened" timestamps.
inline constexpr sim::Time kNever = -1;

/// Lifecycle of one application packet at the sender.
struct PacketRecord {
  std::uint64_t id = 0;
  int payload_bytes = 0;
  /// When the application handed the packet to the stack.
  sim::Time arrived_at = 0;
  /// Queue occupancy (including any in-service packet) seen on arrival.
  int queue_depth_at_arrival = 0;
  /// True if the packet was dropped because the queue was full.
  bool dropped_at_queue = false;
  /// When the MAC started serving the packet (SPI load begin); kNever if
  /// dropped at the queue.
  sim::Time service_start = kNever;
  /// When the MAC finished with the packet; kNever if dropped at the queue.
  sim::Time completed_at = kNever;
  /// Link-layer ACK outcome.
  bool acked = false;
  /// Receiver decoded at least one copy.
  bool delivered = false;
  /// Transmissions performed (0 if dropped at queue).
  int tries = 0;
  /// Transmit energy spent on this packet, microjoules.
  double tx_energy_uj = 0.0;
  /// Sender radio RX/listen time for this packet (backoffs, ACK waits).
  sim::Duration listen_time = 0;
  /// First time the receiver decoded a copy; kNever if undelivered.
  sim::Time first_delivered_at = kNever;
  /// Channel readings of the first delivered copy (0 if undelivered).
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  int lqi = 0;
};

/// One radio transmission attempt (for PER-vs-SNR analysis, Fig. 6).
struct AttemptRecord {
  std::uint64_t packet_id = 0;
  int attempt = 0;  ///< 1-based attempt index within the packet
  int payload_bytes = 0;
  sim::Time at = 0;
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  /// Data frame decoded by the receiver.
  bool data_received = false;
  /// ACK made it back (the attempt counts as acknowledged).
  bool acked = false;
};

/// Append-only logs for one simulation run.
class PacketLog {
 public:
  void AddPacket(PacketRecord record) { packets_.push_back(record); }
  void AddAttempt(AttemptRecord record) { attempts_.push_back(record); }

  [[nodiscard]] const std::vector<PacketRecord>& Packets() const noexcept {
    return packets_;
  }
  /// Mutable access for in-flight lifecycle updates. Requires index valid.
  [[nodiscard]] PacketRecord& MutablePacket(std::size_t index) {
    return packets_[index];
  }
  [[nodiscard]] const std::vector<AttemptRecord>& Attempts() const noexcept {
    return attempts_;
  }

  void Reserve(std::size_t packets, std::size_t attempts) {
    packets_.reserve(packets);
    attempts_.reserve(attempts);
  }

  /// Drops every record appended after a snapshot (speculative rollback).
  /// Requires both sizes <= the current sizes; capacity is kept.
  void Truncate(std::size_t packets, std::size_t attempts) {
    packets_.resize(packets);
    attempts_.resize(attempts);
  }

  /// Takes ownership of recycled vectors (cleared here, capacity kept) so a
  /// reused sweep worker logs into warm heap blocks instead of growing
  /// fresh ones each run.
  void AdoptStorage(std::vector<PacketRecord>&& packets,
                    std::vector<AttemptRecord>&& attempts) {
    packets_ = std::move(packets);
    attempts_ = std::move(attempts);
    packets_.clear();
    attempts_.clear();
  }

  /// Returns the log's vectors to the recycling pool (this log becomes
  /// empty). The counterpart of AdoptStorage, called after the caller has
  /// finished reducing the records to metrics.
  void ExtractStorage(std::vector<PacketRecord>& packets,
                      std::vector<AttemptRecord>& attempts) {
    packets = std::move(packets_);
    attempts = std::move(attempts_);
  }

 private:
  std::vector<PacketRecord> packets_;
  std::vector<AttemptRecord> attempts_;
};

}  // namespace wsnlink::link
