#include "link/link_layer.h"

#include <stdexcept>

namespace wsnlink::link {

LinkLayer::LinkLayer(sim::Simulator& simulator, mac::Mac& mac,
                     int queue_capacity)
    : LinkLayer(simulator, mac, queue_capacity, Storage{}) {}

LinkLayer::LinkLayer(sim::Simulator& simulator, mac::Mac& mac,
                     int queue_capacity, Storage storage)
    : sim_(simulator),
      mac_(mac),
      queue_(queue_capacity, storage.queue),
      open_records_(storage.open_records != nullptr ? storage.open_records
                                                    : &own_open_records_) {
  open_records_->clear();
  open_records_->reserve(static_cast<std::size_t>(queue_capacity) + 1);
  mac_.SetDeliveryCallback(
      [this](const mac::DeliveryInfo& info) { OnDelivery(info); });
  mac_.SetAttemptCallback([this](const mac::AttemptInfo& info) {
    AttemptRecord record;
    record.packet_id = info.packet_id;
    record.attempt = info.attempt;
    record.payload_bytes = info.payload_bytes;
    record.at = info.at;
    record.rssi_dbm = info.rssi_dbm;
    record.snr_db = info.snr_db;
    record.data_received = info.data_received;
    record.acked = info.acked;
    log_.AddAttempt(record);
  });
}

void LinkLayer::AttachTrace(const trace::TraceContext& ctx) {
  tracer_ = ctx.tracer;
  counters_ = ctx.counters;
  node_ = ctx.node;
  queue_.AttachCounters(ctx.counters);
  if (counters_ != nullptr) {
    id_accepted_ = counters_->Register("link.accepted");
    id_queue_drops_ = counters_->Register("link.queue_drops");
    id_served_ = counters_->Register("link.served");
    id_completed_ = counters_->Register("link.completed");
    id_acked_ = counters_->Register("link.acked");
    id_deliveries_ = counters_->Register("link.deliveries");
  }
}

bool LinkLayer::Accept(std::uint64_t packet_id, int payload_bytes) {
  PacketRecord record;
  record.id = packet_id;
  record.payload_bytes = payload_bytes;
  record.arrived_at = sim_.Now();
  record.queue_depth_at_arrival = queue_.Occupancy();

  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kPacketArrival,
                   trace::Layer::kLink, packet_id,
                   record.queue_depth_at_arrival, payload_bytes, 0.0,
                   node_});
  }

  QueuedPacket packet{packet_id, payload_bytes, sim_.Now()};
  const bool accepted = queue_.Offer(packet);
  record.dropped_at_queue = !accepted;

  log_.AddPacket(record);
  if (!accepted) {
    if (counters_ != nullptr) counters_->Add(id_queue_drops_);
    if (tracer_ != nullptr) {
      tracer_->Emit({sim_.Now(), trace::EventType::kQueueDrop,
                     trace::Layer::kLink, packet_id, queue_.Occupancy(), 0,
                     0.0, node_});
    }
    return false;
  }

  if (counters_ != nullptr) counters_->Add(id_accepted_);
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kQueueEnqueue,
                   trace::Layer::kLink, packet_id, queue_.Occupancy(), 0,
                   0.0, node_});
  }

  open_records_->emplace_back(packet_id, log_.Packets().size() - 1);
  if (!queue_.InService()) ServeNext();
  return true;
}

void LinkLayer::ServeNext() {
  if (queue_.InService() || !queue_.HasWaiting()) return;
  const QueuedPacket head = queue_.StartService();
  in_service_id_ = head.id;

  const OpenRecord* open = FindOpen(head.id);
  if (open == nullptr) {
    throw std::logic_error("LinkLayer: serving unknown packet");
  }
  log_.MutablePacket(open->second).service_start = sim_.Now();

  if (counters_ != nullptr) counters_->Add(id_served_);
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kServiceStart,
                   trace::Layer::kLink, head.id, queue_.Occupancy(),
                   head.payload_bytes, 0.0, node_});
  }

  mac_.Send(head.id, head.payload_bytes,
            [this](const mac::SendResult& result) { OnSendDone(result); });
}

void LinkLayer::OnSendDone(const mac::SendResult& result) {
  OpenRecord* open = FindOpen(result.packet_id);
  if (open == nullptr) {
    throw std::logic_error("LinkLayer: completion for unknown packet");
  }
  PacketRecord& record = log_.MutablePacket(open->second);
  record.completed_at = result.completed_at;
  record.acked = result.acked;
  record.delivered = result.delivered;
  record.tries = result.tries;
  record.tx_energy_uj = result.tx_energy_uj;
  record.listen_time = result.listen_time;
  // Swap-erase: lookup is by id, so order within the array is irrelevant.
  *open = open_records_->back();
  open_records_->pop_back();

  if (counters_ != nullptr) {
    counters_->Add(id_completed_);
    if (result.acked) counters_->Add(id_acked_);
  }
  if (tracer_ != nullptr) {
    tracer_->Emit({sim_.Now(), trace::EventType::kPacketCompleted,
                   trace::Layer::kLink, result.packet_id, result.tries,
                   (result.acked ? trace::kFlagAcked : 0) |
                       (result.delivered ? trace::kFlagDelivered : 0),
                   result.tx_energy_uj, node_});
  }

  queue_.FinishService();
  ServeNext();
}

void LinkLayer::OnDelivery(const mac::DeliveryInfo& info) {
  if (counters_ != nullptr) counters_->Add(id_deliveries_);
  if (tracer_ != nullptr) {
    tracer_->Emit({info.received_at, trace::EventType::kPacketDelivered,
                   trace::Layer::kLink, info.packet_id, info.attempt,
                   info.payload_bytes, info.rssi_dbm, node_});
  }
  if (const OpenRecord* open = FindOpen(info.packet_id)) {
    PacketRecord& record = log_.MutablePacket(open->second);
    if (record.first_delivered_at == kNever) {
      record.first_delivered_at = info.received_at;
      record.rssi_dbm = info.rssi_dbm;
      record.snr_db = info.snr_db;
      record.lqi = info.lqi;
    }
  }
  if (on_delivery_) on_delivery_(info);
}

LinkLayer::OpenRecord* LinkLayer::FindOpen(std::uint64_t packet_id) noexcept {
  for (OpenRecord& entry : *open_records_) {
    if (entry.first == packet_id) return &entry;
  }
  return nullptr;
}

bool LinkLayer::Idle() const noexcept {
  return !queue_.InService() && !queue_.HasWaiting();
}

}  // namespace wsnlink::link
