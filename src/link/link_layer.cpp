#include "link/link_layer.h"

#include <stdexcept>

namespace wsnlink::link {

LinkLayer::LinkLayer(sim::Simulator& simulator, mac::Mac& mac,
                     int queue_capacity)
    : sim_(simulator), mac_(mac), queue_(queue_capacity) {
  mac_.SetDeliveryCallback(
      [this](const mac::DeliveryInfo& info) { OnDelivery(info); });
  mac_.SetAttemptCallback([this](const mac::AttemptInfo& info) {
    AttemptRecord record;
    record.packet_id = info.packet_id;
    record.attempt = info.attempt;
    record.payload_bytes = info.payload_bytes;
    record.at = info.at;
    record.rssi_dbm = info.rssi_dbm;
    record.snr_db = info.snr_db;
    record.data_received = info.data_received;
    record.acked = info.acked;
    log_.AddAttempt(record);
  });
}

bool LinkLayer::Accept(std::uint64_t packet_id, int payload_bytes) {
  PacketRecord record;
  record.id = packet_id;
  record.payload_bytes = payload_bytes;
  record.arrived_at = sim_.Now();
  record.queue_depth_at_arrival = queue_.Occupancy();

  QueuedPacket packet{packet_id, payload_bytes, sim_.Now()};
  const bool accepted = queue_.Offer(packet);
  record.dropped_at_queue = !accepted;

  log_.AddPacket(record);
  if (!accepted) return false;

  open_records_[packet_id] = log_.Packets().size() - 1;
  if (!queue_.InService()) ServeNext();
  return true;
}

void LinkLayer::ServeNext() {
  if (queue_.InService() || !queue_.HasWaiting()) return;
  const QueuedPacket head = queue_.StartService();
  in_service_id_ = head.id;

  const auto it = open_records_.find(head.id);
  if (it == open_records_.end()) {
    throw std::logic_error("LinkLayer: serving unknown packet");
  }
  log_.MutablePacket(it->second).service_start = sim_.Now();

  mac_.Send(head.id, head.payload_bytes,
            [this](const mac::SendResult& result) { OnSendDone(result); });
}

void LinkLayer::OnSendDone(const mac::SendResult& result) {
  const auto it = open_records_.find(result.packet_id);
  if (it == open_records_.end()) {
    throw std::logic_error("LinkLayer: completion for unknown packet");
  }
  PacketRecord& record = log_.MutablePacket(it->second);
  record.completed_at = result.completed_at;
  record.acked = result.acked;
  record.delivered = result.delivered;
  record.tries = result.tries;
  record.tx_energy_uj = result.tx_energy_uj;
  record.listen_time = result.listen_time;
  open_records_.erase(it);

  queue_.FinishService();
  ServeNext();
}

void LinkLayer::OnDelivery(const mac::DeliveryInfo& info) {
  const auto it = open_records_.find(info.packet_id);
  if (it != open_records_.end()) {
    PacketRecord& record = log_.MutablePacket(it->second);
    if (record.first_delivered_at == kNever) {
      record.first_delivered_at = info.received_at;
      record.rssi_dbm = info.rssi_dbm;
      record.snr_db = info.snr_db;
      record.lqi = info.lqi;
    }
  }
  if (on_delivery_) on_delivery_(info);
}

bool LinkLayer::Idle() const noexcept {
  return !queue_.InService() && !queue_.HasWaiting();
}

}  // namespace wsnlink::link
