// Network-calculus service-curve model of the WSN link.
//
// The paper's follow-up work ("Service Modeling and Delay Analysis of
// Packet Delivery over a Wireless Link") models exactly this stack —
// bounded-retry CSMA over a lossy channel behind a finite FIFO — as a
// latency-rate service curve fed by a token-bucket arrival curve, and
// derives delay and backlog bounds from the pair. This module rebuilds
// that analysis from the simulator's own timing constants so the bounds
// are an *independent* oracle: nothing here runs the simulator, every
// number is closed-form in the SimulationOptions.
//
// Two kinds of guarantee come out:
//
//  * Hard bounds. Every stage of a MAC attempt has a finite worst case
//    (initial backoff <= 10.56 ms, at most 16 congestion backoffs, ACK
//    wait <= 8.192 ms, ...), so per-packet service time, queue wait and
//    first-delivery delay all have deterministic suprema. A single
//    measured delay outside [min_delay_ms, max_delay_ms] is a simulator
//    timing bug, full stop.
//
//  * Stochastic envelopes. The probability that a packet is still
//    undelivered after its k-th attempt is bounded through the paper's
//    PER model (Eq. 3) evaluated conservatively over the channel's SNR
//    fluctuation (lognormal MGF over shadowing + noise sigma, preamble
//    cliff mass, interference-burst duty, shared-medium contention).
//    Chained with the hard per-attempt timing this yields an analytic
//    delay-CCDF that must dominate the measured one.
//
// The model is deliberately conservative everywhere (upper bounds, never
// estimates): the cross-validation harness treats any measured excursion
// above an envelope as a hard failure.
#pragma once

#include <vector>

#include "node/link_simulation.h"

namespace wsnlink::validate {

/// Token-bucket arrival curve alpha(t) = burst + rate * t of the app
/// traffic spec (packets; t in seconds).
struct TokenBucketArrival {
  double rate_pps = 0.0;
  double burst_pkts = 1.0;
};

/// Latency-rate service curve beta(t) = rate * max(0, t - latency) the
/// serialised MAC guarantees (packets; latency in ms).
struct LatencyRateService {
  double latency_ms = 0.0;
  double rate_pps = 0.0;
};

/// One step of the analytic delay-CCDF envelope: for delivered packets,
/// P(delay > delay_ms) <= tail_probability.
struct CcdfStep {
  double delay_ms = 0.0;
  double tail_probability = 1.0;
};

/// Knobs of the analytic model itself.
struct ServiceCurveParams {
  /// Scales the PER model's `a` coefficient. 1.0 is the calibrated model;
  /// the negative tests mis-parameterise it (e.g. 0.5 = "PER halved") to
  /// prove the harness actually bites.
  double per_scale = 1.0;
  /// Multiplicative safety margin on every stochastic term, absorbing the
  /// residual gap between the paper's Eq. 3 fit (evaluated per radiated
  /// frame byte) and the simulator's calibrated BER curve. Calibrated so
  /// the measured/analytic attempt-loss ratio (~0.72-0.80 across the
  /// validation grid) keeps >= 1.5x headroom, while a halved PER
  /// (per_scale = 0.5) lands below the measurement on lossy links.
  double model_margin = 1.25;
};

/// Everything the service-curve analysis yields for one configuration.
struct DelayBounds {
  /// Fastest possible first delivery: SPI load + turnaround + airtime, ms.
  double min_delay_ms = 0.0;
  /// Hard supremum of arrival -> first-delivery delay over delivered
  /// packets, ms.
  double max_delay_ms = 0.0;
  /// Hard supremum of one packet's service time (SPI + all attempts), ms.
  double max_service_ms = 0.0;
  /// Hard supremum of the queue wait an accepted packet can suffer, ms.
  double max_queue_wait_ms = 0.0;
  /// Largest queue occupancy an accepted arrival can observe, packets.
  int backlog_bound_pkts = 0;
  /// Worst-case utilisation max_service / T_pkt; < 1 certifies the queue
  /// drains (the network-calculus stability condition rate >= arrival).
  double worst_case_utilization = 0.0;
  /// True when worst_case_utilization < 1 (the latency-rate service rate
  /// covers the token-bucket arrival rate even in the worst case).
  bool stable = false;

  /// The curve pair the bounds derive from.
  TokenBucketArrival arrival;
  LatencyRateService service;

  /// Analytic delay-CCDF envelope, one step per attempt; the last step
  /// has tail 0 (the hard maximum).
  std::vector<CcdfStep> ccdf;
};

/// Closed-form service-curve analysis of one simulator configuration.
///
/// `contending_nodes` is the number of identical senders sharing the
/// medium (1 = the single-link experiment). Throws std::invalid_argument
/// for option sets outside the model's scope: Poisson arrivals, mobility
/// and the synthetic interferer void the hard bounds.
class ServiceCurveModel {
 public:
  ServiceCurveModel(const node::SimulationOptions& options,
                    int contending_nodes = 1, ServiceCurveParams params = {});

  /// The full bound set (computed once, cheap to copy).
  [[nodiscard]] const DelayBounds& Bounds() const noexcept { return bounds_; }

  /// Upper bound on P(a packet's first k attempts all fail to deliver).
  /// `per_attempt_factor` inflates the per-attempt loss (2.0 adds the
  /// lost-ACK branch for try-count envelopes; 1.0 is delivery only).
  /// Non-increasing in k; accounts for attempt-to-attempt correlation via
  /// the shadowing MGF and un-exponentiated burst/contention mass.
  [[nodiscard]] double AttemptTailProbability(int k,
                                              double per_attempt_factor) const;

  /// Upper bound on the per-packet radio loss (all attempts undelivered).
  [[nodiscard]] double RadioLossBound() const;

  /// Link quality the stochastic terms are evaluated at.
  [[nodiscard]] double MeanSnrDb() const noexcept { return mean_snr_db_; }
  /// Conservative SNR standard deviation (shadowing + noise floor), dB.
  [[nodiscard]] double SnrSigmaDb() const noexcept { return snr_sigma_db_; }

  /// Conservative mean per-attempt delivery-failure probability (the k=1
  /// tail) — handy for reports.
  [[nodiscard]] double EffectiveAttemptLoss() const {
    return AttemptTailProbability(1, 1.0);
  }

 private:
  ServiceCurveParams params_;
  int max_tries_ = 1;
  int payload_bytes_ = 0;
  double mean_snr_db_ = 0.0;
  double snr_sigma_db_ = 0.0;
  double preamble_snr_db_ = 0.0;
  /// Probability mass of stochastic loss sources that persist across a
  /// packet's whole retry ladder (noise bursts, shared-medium contention);
  /// added once per tail, never exponentiated.
  double correlated_loss_ = 0.0;
  DelayBounds bounds_;
};

}  // namespace wsnlink::validate
