#include "validate/service_curve.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/shadowing.h"
#include "core/models/per_model.h"
#include "mac/csma_mac.h"
#include "mac/lpl_mac.h"
#include "phy/cc2420.h"
#include "phy/frame.h"
#include "phy/timing.h"
#include "sim/time.h"

namespace wsnlink::validate {
namespace {

/// Standard normal CDF.
double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Worst case of one CSMA attempt that transmits: initial backoff, the
/// full congestion-backoff ladder, turnaround, the frame, and the longer
/// of the two post-frame branches (ACK wait timeout > ACK completion). An
/// EBUSY attempt (17th busy CCA) skips turnaround/frame and is strictly
/// shorter, so this dominates every attempt shape.
sim::Duration CsmaAttemptMax(sim::Duration air) {
  return phy::kInitialBackoffMax +
         mac::kMaxCcaRetries * phy::kCongestionBackoffMax +
         phy::kTurnaroundTime + air + phy::kAckWaitTimeout;
}

/// Worst case from an attempt's start to the delivery instant within it
/// (delivery happens when the frame is decoded, before any ACK handling).
sim::Duration CsmaDeliveryTailMax(sim::Duration air) {
  return phy::kInitialBackoffMax +
         mac::kMaxCcaRetries * phy::kCongestionBackoffMax +
         phy::kTurnaroundTime + air;
}

/// Worst case of one LPL train: pre-copy backoff + carrier-sense ladder
/// (1 + kMaxCcaRetries congestion backoffs) + turnaround, a copies phase
/// bounded by its own deadline (wakeup interval + probe), and the ACK
/// completion of the final copy.
sim::Duration LplTrainMax(sim::Duration wakeup, sim::Duration probe) {
  return (mac::kMaxCcaRetries + 1) * phy::kCongestionBackoffMax +
         phy::kTurnaroundTime + wakeup + probe + phy::kAckTime;
}

sim::Duration LplDeliveryTailMax(sim::Duration wakeup, sim::Duration probe) {
  return (mac::kMaxCcaRetries + 1) * phy::kCongestionBackoffMax +
         phy::kTurnaroundTime + wakeup + probe;
}

}  // namespace

ServiceCurveModel::ServiceCurveModel(const node::SimulationOptions& options,
                                     int contending_nodes,
                                     ServiceCurveParams params)
    : params_(params) {
  if (options.poisson_arrivals) {
    throw std::invalid_argument(
        "ServiceCurveModel: Poisson arrivals are outside the model's scope "
        "(the token-bucket arrival curve assumes periodic traffic)");
  }
  if (options.mobility_speed_mps > 0.0) {
    throw std::invalid_argument(
        "ServiceCurveModel: mobility voids the stationary-channel bounds");
  }
  if (options.interferer_duty_cycle > 0.0) {
    throw std::invalid_argument(
        "ServiceCurveModel: the synthetic interferer is outside the model's "
        "scope (use the shared-medium contention term instead)");
  }
  if (contending_nodes < 1) {
    throw std::invalid_argument(
        "ServiceCurveModel: contending_nodes must be >= 1");
  }
  if (params_.per_scale <= 0.0 || params_.model_margin <= 0.0) {
    throw std::invalid_argument(
        "ServiceCurveModel: per_scale and model_margin must be > 0");
  }
  options.config.Validate();

  const core::StackConfig& config = options.config;
  max_tries_ = config.max_tries;
  payload_bytes_ = config.payload_bytes;

  // --- channel statistics the stochastic terms are evaluated at ---
  const channel::ChannelConfig chan = node::MakeChannelConfig(options);
  const double tx_dbm = phy::OutputPowerDbm(config.pa_level);
  mean_snr_db_ =
      channel::Channel(chan, util::Rng(1)).MeanSnrDb(tx_dbm);
  const double shadow_sigma =
      chan.use_default_temporal_sigma
          ? channel::DefaultTemporalSigmaDb(config.distance_m)
          : chan.shadowing.sigma_db;
  snr_sigma_db_ = std::sqrt(shadow_sigma * shadow_sigma +
                            chan.noise.quiet_sigma_db * chan.noise.quiet_sigma_db);
  preamble_snr_db_ = chan.preamble_snr_db;

  // --- hard per-stage timing (integer microseconds, like the simulator) ---
  const sim::Duration spi = phy::SpiLoadTime(config.payload_bytes);
  const sim::Duration air = phy::DataFrameAirTime(config.payload_bytes);
  const sim::Duration retry = sim::FromMilliseconds(config.retry_delay_ms);
  const sim::Duration t_pkt = sim::FromMilliseconds(config.pkt_interval_ms);

  sim::Duration attempt_max = 0;
  sim::Duration tail_max = 0;
  // How long one transmission keeps the medium busy for everyone else:
  // CSMA radiates one frame and its ACK; an LPL train strobes copies for
  // up to the whole wakeup-plus-probe window.
  sim::Duration medium_busy = 0;
  if (options.mac == node::MacKind::kLpl) {
    const sim::Duration wakeup =
        sim::FromMilliseconds(options.lpl_wakeup_interval_ms);
    const sim::Duration probe = mac::LplParams{}.probe_duration;
    attempt_max = LplTrainMax(wakeup, probe);
    tail_max = LplDeliveryTailMax(wakeup, probe);
    medium_busy = wakeup + probe + phy::kAckTime;
  } else {
    attempt_max = CsmaAttemptMax(air);
    tail_max = CsmaDeliveryTailMax(air);
    medium_busy = air + phy::AckAirTime() + phy::kTurnaroundTime;
  }

  const int n = config.max_tries;
  const sim::Duration service_max =
      spi + static_cast<sim::Duration>(n) * attempt_max +
      static_cast<sim::Duration>(n - 1) * retry;

  // Queue wait: FIFO, and the capacity counts the in-service slot, so an
  // accepted arrival sees at most Q-1 packets ahead of it (Q = 1 means an
  // accepted packet starts service immediately — a busy server drops the
  // arrival instead of queueing it). When even the worst-case service
  // fits inside the arrival period the system empties between arrivals
  // (Lindley recursion with S - T <= 0) and the wait is additionally
  // bounded by one residual service; otherwise the queue can be full.
  const bool stable = service_max < t_pkt;
  const sim::Duration queue_ahead_max =
      static_cast<sim::Duration>(config.queue_capacity - 1) * service_max;
  const sim::Duration wait_max =
      stable ? std::min(service_max, queue_ahead_max) : queue_ahead_max;

  bounds_.min_delay_ms =
      sim::ToMilliseconds(spi + phy::kTurnaroundTime + air);
  bounds_.max_service_ms = sim::ToMilliseconds(service_max);
  bounds_.max_queue_wait_ms = sim::ToMilliseconds(wait_max);
  bounds_.max_delay_ms = sim::ToMilliseconds(
      wait_max + spi + static_cast<sim::Duration>(n - 1) * (attempt_max + retry) +
      tail_max);
  bounds_.backlog_bound_pkts = stable ? 1 : config.queue_capacity - 1;
  bounds_.worst_case_utilization =
      sim::ToMilliseconds(service_max) / config.pkt_interval_ms;
  bounds_.stable = stable;

  bounds_.arrival.rate_pps = 1000.0 / config.pkt_interval_ms;
  bounds_.arrival.burst_pkts = 1.0;
  bounds_.service.latency_ms = 0.0;
  bounds_.service.rate_pps = 1000.0 / sim::ToMilliseconds(service_max);

  // --- correlated loss mass (persists across a packet's retry ladder) ---
  // Noise bursts outlive the few-ms spacing between attempts, so a burst
  // can take out the whole ladder: count its duty once, assuming any
  // overlap is fatal (conservative; the mean elevation rarely is).
  const double burst_window_s =
      sim::ToSeconds(chan.noise.burst_mean_duration + air + phy::kAckTime);
  correlated_loss_ = chan.noise.burst_rate_hz * burst_window_s;
  // Shared-medium contention: each of the other senders occupies the
  // medium for at most max_tries transmissions per arrival period; any
  // overlap with our own occupancy window can collide or exhaust the CCA
  // ladder. Arrivals may be phase-locked (every node's app starts at
  // t = 0), so this is a worst-case overlap fraction, not an independence
  // argument — for LPL's long strobe trains it saturates quickly.
  if (contending_nodes > 1) {
    const double vulnerable_s = 2.0 * sim::ToSeconds(medium_busy);
    correlated_loss_ += static_cast<double>(contending_nodes - 1) *
                        static_cast<double>(config.max_tries) * vulnerable_s /
                        sim::ToSeconds(t_pkt);
  }
  correlated_loss_ = std::min(1.0, correlated_loss_);

  // --- analytic delay-CCDF envelope ---
  // A packet delivered on attempt k waited at most wait_max in the queue,
  // then SPI + (k-1) full attempts + retry gaps + the delivery tail of
  // attempt k. Exceeding that step therefore requires the first k
  // attempts to all fail to deliver.
  const double delivered_floor = 1.0 - AttemptTailProbability(n, 1.0);
  bounds_.ccdf.reserve(static_cast<std::size_t>(n));
  for (int k = 1; k <= n; ++k) {
    CcdfStep step;
    step.delay_ms = sim::ToMilliseconds(
        wait_max + spi +
        static_cast<sim::Duration>(k - 1) * (attempt_max + retry) + tail_max);
    if (k == n) {
      step.tail_probability = 0.0;  // the hard maximum
    } else if (delivered_floor <= 0.0) {
      step.tail_probability = 1.0;
    } else {
      step.tail_probability =
          std::min(1.0, AttemptTailProbability(k, 1.0) / delivered_floor);
    }
    bounds_.ccdf.push_back(step);
  }
}

double ServiceCurveModel::AttemptTailProbability(
    int k, double per_attempt_factor) const {
  if (k < 1) throw std::invalid_argument("AttemptTailProbability: k must be >= 1");
  if (per_attempt_factor < 1.0) {
    throw std::invalid_argument(
        "AttemptTailProbability: per_attempt_factor must be >= 1");
  }
  // Attempts within one packet are separated by milliseconds while the
  // shadowing coherence is seconds: the k attempts see essentially one
  // SNR draw X ~ N(mu, sigma^2). Failure given X is bounded by
  //   q(X) = min(1, factor * a' * l_eff * exp(b X))    (Eq. 3, scaled)
  // plus certain failure below the preamble-acquisition threshold, so
  //   P(k failures) <= P(X < thresh) + E[(factor a' l_eff e^{bX})^k]
  // with the Gaussian MGF E[e^{kbX}] = exp(k b mu + k^2 b^2 sigma^2 / 2).
  // l_eff counts the whole radiated frame, not just the payload: the 19
  // overhead bytes take bit errors too, and at small payloads they are
  // the dominant loss surface (Eq. 3's payload-only fit underestimates a
  // 20-byte frame's loss by ~2x; per-frame-byte it is uniform).
  const core::models::PerModel per_model;
  const double a =
      params_.per_scale * per_model.Coefficients().a * per_attempt_factor;
  const double b = per_model.Coefficients().b;
  const double effective_bytes =
      static_cast<double>(payload_bytes_ + phy::kStackOverheadBytes);

  const double cliff =
      NormalCdf((preamble_snr_db_ - mean_snr_db_) / snr_sigma_db_);
  // The Chernoff-style exponent grows with k (k^2 b^2 sigma^2 / 2 in
  // total), so the raw j-failure bound is not monotone in j even though
  // the true tail is; since P(k failures) <= P(j failures) for j <= k,
  // the running minimum over j <= k is itself a valid (and monotone)
  // bound.
  double mgf_k = 1.0;
  for (int j = 1; j <= k; ++j) {
    const double jj = static_cast<double>(j);
    const double per_attempt_mgf =
        a * effective_bytes *
        std::exp(b * mean_snr_db_ +
                 jj * b * b * snr_sigma_db_ * snr_sigma_db_ / 2.0);
    mgf_k = std::min(mgf_k, std::pow(std::min(1.0, per_attempt_mgf), jj));
  }

  const double tail =
      params_.model_margin * (cliff + mgf_k + correlated_loss_);
  return std::min(1.0, tail);
}

double ServiceCurveModel::RadioLossBound() const {
  return AttemptTailProbability(max_tries_, 1.0);
}

}  // namespace wsnlink::validate
