// Cross-validation of the simulator against the service-curve model.
//
// Runs the event-driven simulator for one configuration, extracts every
// per-packet sojourn time (metrics/latency.h), and statistically asserts
// the empirical delay distribution respects the analytic bounds of
// service_curve.h:
//
//   hard checks   — every delay inside [min, max]; every accepted arrival
//                   saw at most the backlog bound. One excursion fails.
//   CCDF checks   — the analytic delay-CCDF envelope dominates the
//                   empirical CCDF at every step, up to the DKW band
//                   half-width for the sample size (distribution-free:
//                   no assumption about the true delay law).
//   tries / loss  — the measured try-count tail and radio loss stay under
//                   the attempt-failure envelopes. These are the sharp
//                   checks: mis-parameterise the PER model (per_scale)
//                   and they fail on any lossy configuration.
//
// Deterministic end to end: fixed simulation seed, fixed bootstrap seed,
// no wall-clock. Violations are collected (not thrown) so a test can
// print the full report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "metrics/latency.h"
#include "node/link_simulation.h"
#include "util/stats.h"
#include "validate/service_curve.h"

namespace wsnlink::validate {

/// One cross-validation run = one configuration x channel condition.
struct CrossValidationOptions {
  /// Simulator options (config, MAC, seed, packet count, ablations).
  node::SimulationOptions sim;
  /// Identical contending senders sharing the medium (1 = single link).
  int nodes = 1;
  /// Confidence of the DKW band granted to every stochastic check. High
  /// by default: a violation should mean "the simulator is wrong", not
  /// "the draw was unlucky".
  double confidence = 0.999;
  /// Analytic-model knobs (per_scale for deliberate mis-parameterisation).
  ServiceCurveParams curve;
};

/// Everything one cross-validation run produced.
struct CrossValidationReport {
  /// The analytic bounds the run was checked against.
  DelayBounds bounds;
  /// Pooled empirical delay profile (all nodes).
  metrics::LatencyProfile profile;
  /// Delivered-packet sample size behind the DKW band.
  std::size_t samples = 0;
  /// DKW band half-width at `samples` and the configured confidence.
  double dkw_epsilon = 1.0;

  /// Measured summary statistics (0 when nothing was delivered).
  double measured_min_ms = 0.0;
  double measured_p50_ms = 0.0;
  double measured_p99_ms = 0.0;
  double measured_max_ms = 0.0;
  /// Fixed-seed bootstrap confidence interval of the median delay.
  util::ConfidenceInterval p50_ci;
  /// Measured per-packet radio loss (served packets never delivered).
  double measured_plr_radio = 0.0;
  /// Analytic radio-loss bound for comparison.
  double plr_radio_bound = 0.0;

  /// Human-readable description of every violated bound; empty = passed.
  std::vector<std::string> violations;
  [[nodiscard]] bool Passed() const noexcept { return violations.empty(); }

  /// Multi-line rendering for test logs and the delay_bounds example.
  [[nodiscard]] std::string ToString() const;
};

/// Runs the simulator and checks it against the service-curve model.
/// Throws std::invalid_argument for options outside the model's scope
/// (Poisson arrivals, mobility, synthetic interferer) and
/// std::runtime_error if the run delivered nothing (no distribution to
/// validate — the grid should not contain dead links).
[[nodiscard]] CrossValidationReport RunCrossValidation(
    const CrossValidationOptions& options);

}  // namespace wsnlink::validate
