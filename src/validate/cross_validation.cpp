#include "validate/cross_validation.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "link/packet_log.h"
#include "node/network_simulation.h"

namespace wsnlink::validate {
namespace {

/// Slack for double round-trips of the integer-microsecond timestamps
/// (ToMilliseconds divides by 1000; the bounds use the same conversion).
constexpr double kTimingSlackMs = 1e-9;

std::string Format(const char* fmt, double a, double b, double c = 0.0) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, a, b, c);
  return std::string(buf);
}

}  // namespace

std::string CrossValidationReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "service-curve bounds: delay [%.3f, %.3f] ms, service <= %.3f "
                "ms, queue wait <= %.3f ms, backlog <= %d pkts, rho_max %.3f "
                "(%s)\n",
                bounds.min_delay_ms, bounds.max_delay_ms, bounds.max_service_ms,
                bounds.max_queue_wait_ms, bounds.backlog_bound_pkts,
                bounds.worst_case_utilization,
                bounds.stable ? "stable" : "queue-limited");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "measured (n=%zu): min %.3f  p50 %.3f  p99 %.3f  max %.3f ms; "
                "p50 CI [%.3f, %.3f]; plr_radio %.4f (bound %.4f); DKW eps "
                "%.4f\n",
                samples, measured_min_ms, measured_p50_ms, measured_p99_ms,
                measured_max_ms, p50_ci.lo, p50_ci.hi, measured_plr_radio,
                plr_radio_bound, dkw_epsilon);
  out += buf;
  out += "analytic delay-CCDF envelope vs empirical:\n";
  for (const auto& step : bounds.ccdf) {
    const double emp = profile.Empty() ? 0.0 : profile.Ccdf(step.delay_ms);
    std::snprintf(buf, sizeof(buf), "  P(D > %9.3f ms) <= %.4f   measured %.4f\n",
                  step.delay_ms, step.tail_probability, emp);
    out += buf;
  }
  if (violations.empty()) {
    out += "PASS: empirical distribution respects every analytic bound\n";
  } else {
    out += "FAIL: " + std::to_string(violations.size()) + " bound violation(s)\n";
    for (const auto& v : violations) out += "  - " + v + "\n";
  }
  return out;
}

CrossValidationReport RunCrossValidation(const CrossValidationOptions& options) {
  if (options.nodes < 1) {
    throw std::invalid_argument("RunCrossValidation: nodes must be >= 1");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    throw std::invalid_argument(
        "RunCrossValidation: confidence must be in (0, 1)");
  }
  const ServiceCurveModel model(options.sim, options.nodes, options.curve);

  CrossValidationReport report;
  report.bounds = model.Bounds();

  // --- run the simulator (one shared-medium run covers all nodes) ---
  std::vector<node::SimulationResult> nodes;
  if (options.nodes == 1) {
    nodes.push_back(node::RunLinkSimulation(options.sim));
  } else {
    const std::vector<double> distances(
        static_cast<std::size_t>(options.nodes),
        options.sim.config.distance_m);
    auto network = node::RunNetworkSimulation(
        node::UniformNetwork(options.sim, distances));
    nodes = std::move(network.nodes);
  }

  // --- pool the empirical material (identical senders, identical law) ---
  std::vector<int> tries_of_served;
  std::uint64_t served = 0;
  std::uint64_t served_delivered = 0;
  for (const auto& result : nodes) {
    metrics::LatencyProfile node_profile = metrics::CollectLatencies(result);
    report.profile.sorted_delays_ms.insert(
        report.profile.sorted_delays_ms.end(),
        node_profile.sorted_delays_ms.begin(),
        node_profile.sorted_delays_ms.end());
    report.profile.queue_depths_at_arrival.insert(
        report.profile.queue_depths_at_arrival.end(),
        node_profile.queue_depths_at_arrival.begin(),
        node_profile.queue_depths_at_arrival.end());
    for (const auto& p : result.log.Packets()) {
      if (p.dropped_at_queue || p.completed_at == link::kNever) continue;
      ++served;
      tries_of_served.push_back(p.tries);
      if (p.delivered) ++served_delivered;
    }
  }
  std::sort(report.profile.sorted_delays_ms.begin(),
            report.profile.sorted_delays_ms.end());
  report.samples = report.profile.Count();
  if (report.samples == 0) {
    throw std::runtime_error(
        "RunCrossValidation: nothing delivered — no delay distribution to "
        "validate (dead link in the grid?)");
  }
  report.dkw_epsilon = util::DkwEpsilon(report.samples, options.confidence);

  report.measured_min_ms = report.profile.MinMs();
  report.measured_p50_ms = report.profile.QuantileMs(0.5);
  report.measured_p99_ms = report.profile.QuantileMs(0.99);
  report.measured_max_ms = report.profile.MaxMs();
  report.p50_ci = util::BootstrapQuantileCi(
      report.profile.sorted_delays_ms, 0.5,
      util::Rng(options.sim.seed).Derive("validate-bootstrap"));
  report.measured_plr_radio =
      served > 0 ? 1.0 - static_cast<double>(served_delivered) /
                             static_cast<double>(served)
                 : 0.0;
  report.plr_radio_bound = model.RadioLossBound();

  const DelayBounds& bounds = report.bounds;

  // --- hard checks: a single excursion is a timing bug ---
  const double lo = bounds.min_delay_ms - kTimingSlackMs;
  const double hi = bounds.max_delay_ms + kTimingSlackMs;
  std::size_t below = 0;
  std::size_t above = 0;
  for (const double d : report.profile.sorted_delays_ms) {
    if (d < lo) ++below;
    if (d > hi) ++above;
  }
  if (below > 0) {
    report.violations.push_back(Format(
        "%.0f delay(s) below the analytic minimum %.3f ms (fastest measured "
        "%.3f ms)",
        static_cast<double>(below), bounds.min_delay_ms,
        report.measured_min_ms));
  }
  if (above > 0) {
    report.violations.push_back(Format(
        "%.0f delay(s) above the analytic maximum %.3f ms (worst measured "
        "%.3f ms)",
        static_cast<double>(above), bounds.max_delay_ms,
        report.measured_max_ms));
  }
  const int worst_depth = report.profile.MaxQueueDepth();
  if (worst_depth > bounds.backlog_bound_pkts) {
    report.violations.push_back(Format(
        "accepted arrival saw queue depth %.0f > backlog bound %.0f",
        static_cast<double>(worst_depth),
        static_cast<double>(bounds.backlog_bound_pkts)));
  }

  // --- CCDF domination: analytic envelope + DKW slack at every step ---
  for (const auto& step : bounds.ccdf) {
    const double emp = report.profile.Ccdf(step.delay_ms);
    if (emp > step.tail_probability + report.dkw_epsilon) {
      report.violations.push_back(Format(
          "empirical P(D > %.3f ms) = %.4f exceeds analytic %.4f + DKW band",
          step.delay_ms, emp, step.tail_probability));
    }
  }

  // --- try-count tail: retries only happen after attempt failures, whose
  //     probability the model bounds (the lost-ACK branch doubles the
  //     per-attempt mass). This is the check a halved PER cannot survive
  //     on a lossy link. ---
  if (served > 0) {
    const double eps_served = util::DkwEpsilon(served, options.confidence);
    std::vector<double> tries_sorted(tries_of_served.begin(),
                                     tries_of_served.end());
    std::sort(tries_sorted.begin(), tries_sorted.end());
    for (int k = 1; k < options.sim.config.max_tries; ++k) {
      const double frac_more =
          util::EmpiricalCcdf(tries_sorted, static_cast<double>(k));
      const double bound = model.AttemptTailProbability(k, 2.0);
      if (frac_more > bound + eps_served) {
        report.violations.push_back(Format(
            "fraction of packets needing > %.0f tries = %.4f exceeds "
            "analytic %.4f + DKW band",
            static_cast<double>(k), frac_more, bound));
      }
    }
    if (report.measured_plr_radio >
        report.plr_radio_bound + eps_served) {
      report.violations.push_back(Format(
          "measured radio loss %.4f exceeds analytic bound %.4f + DKW band",
          report.measured_plr_radio, report.plr_radio_bound));
    }
  }

  return report;
}

}  // namespace wsnlink::validate
