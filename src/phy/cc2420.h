// TI CC2420 radio model.
//
// The paper's motes are TelosB boards with a CC2420 transceiver; the PHY
// parameter it tunes is the PA_LEVEL register (P_tx in {3, 7, ..., 31}).
// This module encodes the datasheet mapping from PA_LEVEL to output power
// and supply current, and derives the per-bit transmit energy E_tx used by
// the paper's energy model (Eq. 2).
#pragma once

#include <array>
#include <span>

namespace wsnlink::phy {

/// 802.15.4 2.4 GHz PHY data rate (bits per second).
inline constexpr double kDataRateBps = 250'000.0;

/// TelosB supply voltage used for energy accounting (volts).
inline constexpr double kSupplyVolts = 3.0;

/// CC2420 receiver sensitivity, dBm (datasheet typical).
inline constexpr double kSensitivityDbm = -95.0;

/// One PA_LEVEL entry of the CC2420 datasheet table.
struct PaLevel {
  int level;            ///< PA_LEVEL register value (the paper's P_tx).
  double output_dbm;    ///< RF output power.
  double current_ma;    ///< Supply current while transmitting.
};

/// The eight PA levels the paper sweeps, in increasing power.
[[nodiscard]] std::span<const PaLevel> PaLevels() noexcept;

/// True if `level` is one of the valid swept PA levels.
[[nodiscard]] bool IsValidPaLevel(int level) noexcept;

/// Datasheet entry for a PA level; throws std::invalid_argument otherwise.
[[nodiscard]] const PaLevel& LookupPaLevel(int level);

/// RF output power in dBm for a PA level.
[[nodiscard]] double OutputPowerDbm(int level);

/// Transmit-mode supply power in milliwatts for a PA level.
[[nodiscard]] double TxPowerMilliwatts(int level);

/// Energy to transmit one bit at a PA level, in microjoules
/// (supply power / data rate). This is the E_tx of the paper's Eq. (2).
[[nodiscard]] double EnergyPerBitMicrojoule(int level);

/// Receive-mode supply current (datasheet: 18.8 mA), for idle-listening
/// energy accounting in extended studies.
inline constexpr double kRxCurrentMa = 18.8;

/// Receive-mode energy per bit-time, microjoules.
[[nodiscard]] double RxEnergyPerBitMicrojoule() noexcept;

}  // namespace wsnlink::phy
