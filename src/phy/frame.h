// IEEE 802.15.4 frame geometry as used by the TinyOS 2.1 CC2420 stack.
//
// The paper's "payload size" l_D is the application payload carried inside
// an active-message data frame; the stack adds a fixed overhead l_0. With a
// 127-byte maximum MPDU and a 13-byte MPDU overhead, the maximum payload is
// 114 bytes — exactly the "maximum payload size in our radio stack
// (114 bytes)" the paper quotes.
#pragma once

#include "sim/time.h"

namespace wsnlink::phy {

/// PHY-layer synchronisation header: 4 B preamble + 1 B SFD + 1 B length.
inline constexpr int kPhyOverheadBytes = 6;

/// MPDU overhead of the TinyOS 2.1 active-message stack: FCF (2) + DSN (1) +
/// dest PAN (2) + dest addr (2) + src addr (2) + 6lowpan/network (1) +
/// AM type (1) + FCS (2) = 13 bytes.
inline constexpr int kMpduOverheadBytes = 13;

/// Total stack overhead per data frame, l_0 in Eq. (2): every non-payload
/// byte radiated for one packet.
inline constexpr int kStackOverheadBytes = kPhyOverheadBytes + kMpduOverheadBytes;

/// Maximum MPDU size allowed by 802.15.4.
inline constexpr int kMaxMpduBytes = 127;

/// Maximum application payload: 127 - 13 = 114 bytes.
inline constexpr int kMaxPayloadBytes = kMaxMpduBytes - kMpduOverheadBytes;

/// ACK frame: 5 B MPDU (FCF 2 + DSN 1 + FCS 2) + 6 B PHY header.
inline constexpr int kAckFrameBytes = 11;

/// Validates a payload size; throws std::invalid_argument outside [1, 114].
void ValidatePayloadSize(int payload_bytes);

/// Bytes radiated for one data frame with the given payload
/// (payload + stack overhead).
[[nodiscard]] int DataFrameBytes(int payload_bytes);

/// On-air duration of `bytes` at 250 kb/s.
[[nodiscard]] sim::Duration AirTime(int bytes);

/// On-air duration of a data frame carrying `payload_bytes`.
[[nodiscard]] sim::Duration DataFrameAirTime(int payload_bytes);

/// On-air duration of an ACK frame.
[[nodiscard]] sim::Duration AckAirTime() noexcept;

}  // namespace wsnlink::phy
