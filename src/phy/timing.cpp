#include "phy/timing.h"

#include "phy/frame.h"

namespace wsnlink::phy {

sim::Duration SpiLoadTime(int payload_bytes) {
  ValidatePayloadSize(payload_bytes);
  constexpr double kBaseUs = 1470.0;
  constexpr double kPerByteUs = 44.4;
  const double us =
      kBaseUs + kPerByteUs * static_cast<double>(kMpduOverheadBytes + payload_bytes);
  return static_cast<sim::Duration>(us + 0.5);
}

}  // namespace wsnlink::phy
