#include "phy/frame.h"

#include <stdexcept>
#include <string>

#include "phy/cc2420.h"

namespace wsnlink::phy {

void ValidatePayloadSize(int payload_bytes) {
  if (payload_bytes < 1 || payload_bytes > kMaxPayloadBytes) {
    throw std::invalid_argument("payload size " + std::to_string(payload_bytes) +
                                " outside [1, " +
                                std::to_string(kMaxPayloadBytes) + "]");
  }
}

int DataFrameBytes(int payload_bytes) {
  ValidatePayloadSize(payload_bytes);
  return payload_bytes + kStackOverheadBytes;
}

sim::Duration AirTime(int bytes) {
  if (bytes <= 0) throw std::invalid_argument("AirTime: bytes must be > 0");
  const double seconds = static_cast<double>(bytes) * 8.0 / kDataRateBps;
  return sim::FromSeconds(seconds);
}

sim::Duration DataFrameAirTime(int payload_bytes) {
  return AirTime(DataFrameBytes(payload_bytes));
}

sim::Duration AckAirTime() noexcept { return AirTime(kAckFrameBytes); }

}  // namespace wsnlink::phy
