// TinyOS 2.1 / CC2420 stack timing constants.
//
// These are the constants the paper measures and plugs into its service-time
// model (Sec. V-B): RX/TX turnaround T_TR = 0.224 ms, mean initial backoff
// T_BO = 5.28 ms, ACK completion T_ACK ~= 1.96 ms, software ACK wait
// T_waitACK = 8.192 ms, plus the SPI bus frame-loading time T_SPI. T_SPI is
// payload dependent; the linear model below is calibrated so that the
// service time for l_D = 110 B matches the paper's Table II (18.52 ms for a
// first-attempt success), i.e. T_SPI(110) ~= 6.93 ms.
#pragma once

#include "sim/time.h"

namespace wsnlink::phy {

/// RX/TX turnaround time (paper: 0.224 ms).
inline constexpr sim::Duration kTurnaroundTime = 224;

/// Unslotted CSMA initial backoff: uniform in [0, kInitialBackoffMax];
/// mean 5.28 ms as the paper reports.
inline constexpr sim::Duration kInitialBackoffMax = 10'560;

/// Mean of the initial backoff (T_BO in the paper's model).
inline constexpr sim::Duration kInitialBackoffMean = kInitialBackoffMax / 2;

/// Congestion backoff after a busy CCA: uniform in [0, 2.44 ms]
/// (TinyOS CC2420 CsmaC defaults).
inline constexpr sim::Duration kCongestionBackoffMax = 2'440;

/// Time from end of data frame until the ACK is fully received and
/// processed (paper's measured T_ACK ~= 1.96 ms; includes the receiver's
/// turnaround, the 11-byte ACK airtime and driver processing).
inline constexpr sim::Duration kAckTime = 1'960;

/// Software ACK wait timeout (paper: 8.192 ms). If no ACK arrives within
/// this window after the frame, the attempt is declared failed.
inline constexpr sim::Duration kAckWaitTimeout = 8'192;

/// SPI frame-loading time for a data frame with payload `payload_bytes`.
///
/// Linear in the MPDU size: fixed driver overhead + per-byte SPI transfer.
/// Calibrated against the paper's Table II service times:
/// T_SPI(l_D) = 1.47 ms + 44.4 us/B * (13 + l_D)  =>  6.93 ms at 110 B.
[[nodiscard]] sim::Duration SpiLoadTime(int payload_bytes);

/// T_MAC in the paper's model: mean initial backoff + turnaround.
[[nodiscard]] constexpr sim::Duration MeanMacDelay() noexcept {
  return kInitialBackoffMean + kTurnaroundTime;
}

}  // namespace wsnlink::phy
