#include "phy/cc2420.h"

#include <stdexcept>
#include <string>

namespace wsnlink::phy {

namespace {

// CC2420 datasheet, table 9 ("Output power settings"): PA_LEVEL vs output
// power and current consumption at 2.45 GHz.
constexpr std::array<PaLevel, 8> kPaLevels{{
    {3, -25.0, 8.5},
    {7, -15.0, 9.9},
    {11, -10.0, 11.2},
    {15, -7.0, 12.5},
    {19, -5.0, 13.9},
    {23, -3.0, 15.2},
    {27, -1.0, 16.5},
    {31, 0.0, 17.4},
}};

}  // namespace

std::span<const PaLevel> PaLevels() noexcept { return kPaLevels; }

bool IsValidPaLevel(int level) noexcept {
  for (const auto& entry : kPaLevels) {
    if (entry.level == level) return true;
  }
  return false;
}

const PaLevel& LookupPaLevel(int level) {
  for (const auto& entry : kPaLevels) {
    if (entry.level == level) return entry;
  }
  throw std::invalid_argument("LookupPaLevel: invalid PA level " +
                              std::to_string(level));
}

double OutputPowerDbm(int level) { return LookupPaLevel(level).output_dbm; }

double TxPowerMilliwatts(int level) {
  return kSupplyVolts * LookupPaLevel(level).current_ma;
}

double EnergyPerBitMicrojoule(int level) {
  // P[mW] / rate[bit/s] = 1e-3 J/bit units, i.e. *1e3 gives uJ/bit.
  return TxPowerMilliwatts(level) * 1e3 / kDataRateBps;
}

double RxEnergyPerBitMicrojoule() noexcept {
  return kSupplyVolts * kRxCurrentMa * 1e3 / kDataRateBps;
}

}  // namespace wsnlink::phy
