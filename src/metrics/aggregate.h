// SNR-bucketed aggregation over attempt logs.
//
// The paper's PER figures (Fig. 6) are built by bucketing hundreds of
// thousands of transmission attempts by their instantaneous SNR and
// computing the error ratio per bucket (optionally split by payload size).
// This module provides that aggregation plus sample extraction for the
// model fitters.
#pragma once

#include <span>
#include <vector>

#include "core/fit/exponential_fit.h"
#include "link/packet_log.h"

namespace wsnlink::metrics {

/// One SNR bucket of attempt outcomes.
struct SnrBucket {
  double snr_center_db = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;

  [[nodiscard]] double Per() const noexcept {
    return attempts > 0
               ? static_cast<double>(failures) / static_cast<double>(attempts)
               : 0.0;
  }
};

/// Buckets attempts by SNR with the given bucket width (dB). Buckets with
/// zero attempts are omitted; output is sorted by SNR. Requires width > 0.
[[nodiscard]] std::vector<SnrBucket> PerBySnr(
    std::span<const link::AttemptRecord> attempts, double bucket_width_db);

/// Same, restricted to attempts of one payload size.
[[nodiscard]] std::vector<SnrBucket> PerBySnrForPayload(
    std::span<const link::AttemptRecord> attempts, int payload_bytes,
    double bucket_width_db);

/// Converts bucketed PER observations into fitter samples
/// (one sample per (payload, bucket), weighted implicitly by inclusion).
[[nodiscard]] std::vector<core::fit::ScaledExpSample> PerFitSamples(
    std::span<const link::AttemptRecord> attempts, double bucket_width_db,
    std::uint64_t min_attempts_per_bucket = 20);

/// Mean-tries observations per (payload, SNR bucket) over *acked* packets,
/// as fitter samples with value = mean extra tries (N_tries - 1), matching
/// the paper's Eq. (7) fit of Fig. 11. SNR of a packet is taken from its
/// first delivered copy.
[[nodiscard]] std::vector<core::fit::ScaledExpSample> NtriesFitSamples(
    std::span<const link::PacketRecord> packets, double bucket_width_db,
    std::uint64_t min_packets_per_bucket = 20);

}  // namespace wsnlink::metrics
