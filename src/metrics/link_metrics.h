// Measured performance metrics of one simulation run.
//
// Computes, from the raw per-packet / per-attempt logs, exactly the
// quantities the paper reports:
//   PER        (Eq. 1)  non-ACKed transmissions / total transmissions
//   U_eng      (Eq. 2)  transmit energy per delivered information bit
//   goodput             unique payload bits per unit time
//   delay               queueing + service, per delivered packet
//   PLR_queue / PLR_radio / total loss
// plus supporting statistics (mean tries, utilization, RSSI/LQI).
#pragma once

#include <vector>

#include "node/link_simulation.h"

namespace wsnlink::metrics {

/// The measured metric vector for one configuration run.
struct LinkMetrics {
  int generated = 0;
  std::uint64_t delivered_unique = 0;
  std::uint64_t duplicates = 0;

  /// Attempt-level packet error rate (paper Eq. 1).
  double per = 0.0;
  /// Mean transmissions per packet that the MAC served and acked.
  double mean_tries_acked = 0.0;
  /// Mean transmissions over all served packets.
  double mean_tries_all = 0.0;

  /// Application-level goodput in kbps (unique payload bits / run time).
  double goodput_kbps = 0.0;
  /// Transmit energy per delivered information bit, microjoules.
  double energy_uj_per_bit = 0.0;
  /// Energy efficiency, bits per microjoule (0 when nothing delivered).
  double efficiency_bits_per_uj = 0.0;

  /// Mean end-to-end delay (arrival -> first delivery), ms.
  double mean_delay_ms = 0.0;
  /// Mean service time (service start -> MAC completion), ms.
  double mean_service_ms = 0.0;
  /// Mean queue wait (arrival -> service start), ms.
  double mean_queue_wait_ms = 0.0;
  /// 99th-percentile delay, ms (0 when nothing delivered).
  double p99_delay_ms = 0.0;
  /// Median delay, ms (0 when nothing delivered).
  double delay_p50_ms = 0.0;
  /// Worst observed delay, ms (0 when nothing delivered).
  double delay_max_ms = 0.0;

  /// Loss decomposition.
  double plr_queue = 0.0;
  double plr_radio = 0.0;
  double plr_total = 0.0;

  /// Measured utilization: mean service time / configured T_pkt.
  double utilization = 0.0;

  /// Channel readings (receiver side, decoded copies).
  double mean_rssi_dbm = 0.0;
  double rssi_stddev_db = 0.0;
  double mean_snr_db = 0.0;
  double mean_lqi = 0.0;

  /// Total simulated run time in seconds.
  double duration_s = 0.0;

  /// Receiver-side idle listening power in milliwatts (duty cycle times
  /// the CC2420 RX draw): 56.4 mW for the always-on CSMA receiver, far
  /// less under LPL. The sender-side transmit cost is energy_uj_per_bit.
  double receiver_idle_power_mw = 0.0;

  /// Sender RX/listen energy per delivered bit, microjoules — backoffs,
  /// turnarounds and ACK waits at the CC2420 RX draw. The paper's Eq. 2
  /// counts transmit energy only; this is the companion term a full
  /// platform power budget adds (0 when nothing was delivered).
  double sender_listen_uj_per_bit = 0.0;
};

/// Extracts the metric vector from a finished run. `pkt_interval_ms` is the
/// configured T_pkt (for the utilization denominator).
[[nodiscard]] LinkMetrics ComputeMetrics(const node::SimulationResult& result,
                                         double pkt_interval_ms);

/// Zero-alloc variant: the per-packet delay samples go through
/// `delay_scratch` (cleared here; capacity reused across calls) and the
/// quantiles select in place. Values are identical to the overload above.
[[nodiscard]] LinkMetrics ComputeMetrics(const node::SimulationResult& result,
                                         double pkt_interval_ms,
                                         std::vector<double>& delay_scratch);

/// Convenience: runs the simulation and computes its metrics.
[[nodiscard]] LinkMetrics MeasureConfig(const node::SimulationOptions& options);

}  // namespace wsnlink::metrics
