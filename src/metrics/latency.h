// Per-packet sojourn-time (latency) extraction for one simulation run.
//
// LinkMetrics reduces delays to a handful of scalars; the service-curve
// cross-validation harness (src/validate/) needs the full empirical
// distribution — every delivered packet's arrival -> first-delivery delay,
// plus the queue depth each accepted packet saw — so it can compare the
// measured CDF against an analytic bound curve. This module extracts that
// profile once from the packet log and offers sorted-sample queries
// (quantiles, CCDF) and a fixed-bin histogram view whose bytes are
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "node/link_simulation.h"
#include "util/histogram.h"

namespace wsnlink::metrics {

/// The empirical delay distribution of one run.
struct LatencyProfile {
  /// Arrival -> first-delivery delay of every delivered packet, in
  /// milliseconds, ascending. One entry per unique delivered packet.
  std::vector<double> sorted_delays_ms;

  /// Queue depth observed by each accepted (not queue-dropped) packet at
  /// its arrival instant, in arrival order. Feeds the backlog-bound check.
  std::vector<int> queue_depths_at_arrival;

  [[nodiscard]] bool Empty() const noexcept { return sorted_delays_ms.empty(); }
  [[nodiscard]] std::size_t Count() const noexcept {
    return sorted_delays_ms.size();
  }

  /// p-quantile of the delay sample (linear interpolation). Requires a
  /// non-empty profile and p in [0, 1].
  [[nodiscard]] double QuantileMs(double p) const;

  /// Empirical tail P(delay > t_ms). Requires a non-empty profile.
  [[nodiscard]] double Ccdf(double t_ms) const;

  /// Smallest / largest observed delay. Require a non-empty profile.
  [[nodiscard]] double MinMs() const;
  [[nodiscard]] double MaxMs() const;

  /// Largest queue depth any accepted packet saw (0 when none accepted).
  [[nodiscard]] int MaxQueueDepth() const noexcept;

  /// Bins the delays into a fixed-width histogram over [lo_ms, hi_ms).
  [[nodiscard]] util::Histogram ToHistogram(double lo_ms, double hi_ms,
                                            std::size_t bins) const;

  /// Canonical text rendering (one "%.6f" delay per line) — byte-compared
  /// by the determinism suite across thread counts and checkpoint/resume.
  [[nodiscard]] std::string Serialize() const;
};

/// Extracts the latency profile from a finished run's packet log.
[[nodiscard]] LatencyProfile CollectLatencies(
    const node::SimulationResult& result);

}  // namespace wsnlink::metrics
