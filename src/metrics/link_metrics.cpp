#include "metrics/link_metrics.h"

#include <vector>

#include "phy/cc2420.h"
#include "util/stats.h"
#include "util/units.h"

namespace wsnlink::metrics {

LinkMetrics ComputeMetrics(const node::SimulationResult& result,
                           double pkt_interval_ms) {
  std::vector<double> delays;
  return ComputeMetrics(result, pkt_interval_ms, delays);
}

LinkMetrics ComputeMetrics(const node::SimulationResult& result,
                           double pkt_interval_ms,
                           std::vector<double>& delay_scratch) {
  LinkMetrics m;
  m.generated = result.generated;
  m.delivered_unique = result.unique_delivered;
  m.duplicates = result.duplicates;
  m.duration_s = sim::ToSeconds(result.end_time);

  // --- attempt-level PER (Eq. 1) ---
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  for (const auto& a : result.log.Attempts()) {
    ++attempts;
    if (!a.acked) ++failures;
  }
  m.per = attempts > 0
              ? static_cast<double>(failures) / static_cast<double>(attempts)
              : 0.0;

  // --- per-packet scans ---
  util::RunningStats tries_acked;
  util::RunningStats tries_all;
  util::RunningStats service_ms;
  util::RunningStats queue_wait_ms;
  util::RunningStats delay_ms;
  std::vector<double>& delays = delay_scratch;
  delays.clear();
  std::uint64_t queue_drops = 0;
  std::uint64_t served = 0;
  std::uint64_t served_delivered = 0;
  double energy_uj = 0.0;
  double listen_s = 0.0;

  for (const auto& p : result.log.Packets()) {
    if (p.dropped_at_queue) {
      ++queue_drops;
      continue;
    }
    // A packet may still be in flight only if the run was truncated; the
    // runner drains everything, so completed_at is always set here.
    if (p.completed_at == link::kNever) continue;
    ++served;
    energy_uj += p.tx_energy_uj;
    listen_s += sim::ToSeconds(p.listen_time);
    tries_all.Add(static_cast<double>(p.tries));
    if (p.acked) tries_acked.Add(static_cast<double>(p.tries));
    if (p.delivered) ++served_delivered;
    service_ms.Add(sim::ToMilliseconds(p.completed_at - p.service_start));
    queue_wait_ms.Add(sim::ToMilliseconds(p.service_start - p.arrived_at));
    if (p.first_delivered_at != link::kNever) {
      const double d = sim::ToMilliseconds(p.first_delivered_at - p.arrived_at);
      delay_ms.Add(d);
      delays.push_back(d);
    }
  }

  m.mean_tries_acked = tries_acked.Empty() ? 0.0 : tries_acked.Mean();
  m.mean_tries_all = tries_all.Empty() ? 0.0 : tries_all.Mean();
  m.mean_service_ms = service_ms.Empty() ? 0.0 : service_ms.Mean();
  m.mean_queue_wait_ms = queue_wait_ms.Empty() ? 0.0 : queue_wait_ms.Mean();
  m.mean_delay_ms = delay_ms.Empty() ? 0.0 : delay_ms.Mean();
  // In-place selection: the second quantile reads the same multiset the
  // first permuted, so both match the copying Quantile() bit for bit.
  m.p99_delay_ms = delays.empty() ? 0.0 : util::QuantileInPlace(delays, 0.99);
  m.delay_p50_ms = delays.empty() ? 0.0 : util::QuantileInPlace(delays, 0.5);
  m.delay_max_ms = delay_ms.Empty() ? 0.0 : delay_ms.Max();

  // --- goodput / energy ---
  const double unique_bits =
      util::kBitsPerByte * static_cast<double>(result.unique_payload_bytes);
  if (m.duration_s > 0.0) {
    m.goodput_kbps = unique_bits / m.duration_s / 1000.0;
  }
  if (unique_bits > 0.0) {
    m.energy_uj_per_bit = energy_uj / unique_bits;
    m.efficiency_bits_per_uj =
        m.energy_uj_per_bit > 0.0 ? 1.0 / m.energy_uj_per_bit : 0.0;
    // Listen seconds * RX power (mW) = mJ; *1000 = uJ.
    m.sender_listen_uj_per_bit =
        listen_s * phy::kSupplyVolts * phy::kRxCurrentMa * 1000.0 /
        unique_bits;
  }

  // --- loss decomposition ---
  const auto generated = static_cast<double>(result.generated);
  if (generated > 0.0) {
    m.plr_queue = static_cast<double>(queue_drops) / generated;
    m.plr_total =
        1.0 - static_cast<double>(result.unique_delivered) / generated;
  }
  if (served > 0) {
    m.plr_radio = 1.0 - static_cast<double>(served_delivered) /
                            static_cast<double>(served);
  }

  // --- utilization ---
  if (pkt_interval_ms > 0.0) {
    m.utilization = m.mean_service_ms / pkt_interval_ms;
  }

  // --- receiver idle power ---
  m.receiver_idle_power_mw =
      result.receiver_idle_duty * phy::kSupplyVolts * phy::kRxCurrentMa;

  // --- channel readings ---
  if (!result.rssi_stats.Empty()) {
    m.mean_rssi_dbm = result.rssi_stats.Mean();
    m.rssi_stddev_db = result.rssi_stats.Count() > 1
                           ? result.rssi_stats.StdDev()
                           : 0.0;
    m.mean_snr_db = result.snr_stats.Mean();
    m.mean_lqi = result.lqi_stats.Mean();
  }
  return m;
}

LinkMetrics MeasureConfig(const node::SimulationOptions& options) {
  const auto result = node::RunLinkSimulation(options);
  return ComputeMetrics(result, options.config.pkt_interval_ms);
}

}  // namespace wsnlink::metrics
