// Counterfactual ("what-if") analysis over recorded channel traces.
//
// A measurement campaign records the channel each attempt actually saw
// (the per-attempt SNR in the attempt log / public dataset). Those traces
// answer more questions than the configuration that produced them: for any
// other payload size, the frame-loss law evaluated on the *same* SNR
// sequence predicts what PER / goodput that payload would have achieved on
// that channel — without re-running anything. This is the analysis mode a
// dataset release enables, and it is how a deployed system can tune payload
// from passive observations alone.
#pragma once

#include <span>
#include <vector>

#include "channel/ber.h"
#include "link/packet_log.h"

namespace wsnlink::metrics {

/// Counterfactual per-attempt failure probability for `payload_bytes`,
/// averaged over the recorded attempt SNRs. An attempt fails if the data
/// frame (payload + 19 B stack overhead) or the 11 B ACK is lost.
/// Requires a non-empty trace and payload in [1, 114].
[[nodiscard]] double CounterfactualPer(
    std::span<const link::AttemptRecord> trace, const channel::BerModel& ber,
    int payload_bytes);

/// One what-if evaluation.
struct WhatIfResult {
  int payload_bytes = 0;
  /// Counterfactual per-attempt failure probability.
  double per = 0.0;
  /// Counterfactual radio loss after `max_tries` attempts (per^N under the
  /// trace-mean approximation).
  double plr_radio = 0.0;
  /// Counterfactual saturated goodput, kbps (Eq. 4 with the service-time
  /// constants and the counterfactual attempt statistics).
  double max_goodput_kbps = 0.0;
};

/// Evaluates a set of candidate payloads against one trace.
/// `max_tries` >= 1 and `retry_delay_ms` >= 0 configure the hypothetical
/// MAC the candidates would run under.
[[nodiscard]] std::vector<WhatIfResult> PayloadWhatIf(
    std::span<const link::AttemptRecord> trace, const channel::BerModel& ber,
    std::span<const int> payloads, int max_tries, double retry_delay_ms = 0.0);

/// The payload (1..114) maximising counterfactual goodput on the trace.
[[nodiscard]] int BestPayloadOnTrace(std::span<const link::AttemptRecord> trace,
                                     const channel::BerModel& ber,
                                     int max_tries,
                                     double retry_delay_ms = 0.0);

}  // namespace wsnlink::metrics
