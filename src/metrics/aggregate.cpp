#include "metrics/aggregate.h"

#include <cmath>
#include <map>
#include <stdexcept>

namespace wsnlink::metrics {

namespace {

/// Bucket key: floor(snr / width).
long BucketIndex(double snr_db, double width) {
  return static_cast<long>(std::floor(snr_db / width));
}

double BucketCenter(long index, double width) {
  return (static_cast<double>(index) + 0.5) * width;
}

}  // namespace

std::vector<SnrBucket> PerBySnr(std::span<const link::AttemptRecord> attempts,
                                double bucket_width_db) {
  if (bucket_width_db <= 0.0) {
    throw std::invalid_argument("PerBySnr: bucket width must be > 0");
  }
  std::map<long, SnrBucket> buckets;
  for (const auto& a : attempts) {
    const long idx = BucketIndex(a.snr_db, bucket_width_db);
    auto& bucket = buckets[idx];
    bucket.snr_center_db = BucketCenter(idx, bucket_width_db);
    ++bucket.attempts;
    if (!a.acked) ++bucket.failures;
  }
  std::vector<SnrBucket> out;
  out.reserve(buckets.size());
  for (const auto& [idx, bucket] : buckets) out.push_back(bucket);
  return out;
}

std::vector<SnrBucket> PerBySnrForPayload(
    std::span<const link::AttemptRecord> attempts, int payload_bytes,
    double bucket_width_db) {
  std::vector<link::AttemptRecord> filtered;
  filtered.reserve(attempts.size());
  for (const auto& a : attempts) {
    if (a.payload_bytes == payload_bytes) filtered.push_back(a);
  }
  return PerBySnr(filtered, bucket_width_db);
}

std::vector<core::fit::ScaledExpSample> PerFitSamples(
    std::span<const link::AttemptRecord> attempts, double bucket_width_db,
    std::uint64_t min_attempts_per_bucket) {
  if (bucket_width_db <= 0.0) {
    throw std::invalid_argument("PerFitSamples: bucket width must be > 0");
  }
  // Key: (payload, bucket index).
  std::map<std::pair<int, long>, SnrBucket> buckets;
  for (const auto& a : attempts) {
    const long idx = BucketIndex(a.snr_db, bucket_width_db);
    auto& bucket = buckets[{a.payload_bytes, idx}];
    bucket.snr_center_db = BucketCenter(idx, bucket_width_db);
    ++bucket.attempts;
    if (!a.acked) ++bucket.failures;
  }
  std::vector<core::fit::ScaledExpSample> samples;
  for (const auto& [key, bucket] : buckets) {
    if (bucket.attempts < min_attempts_per_bucket) continue;
    core::fit::ScaledExpSample s;
    s.payload_bytes = static_cast<double>(key.first);
    s.snr_db = bucket.snr_center_db;
    s.value = bucket.Per();
    samples.push_back(s);
  }
  return samples;
}

std::vector<core::fit::ScaledExpSample> NtriesFitSamples(
    std::span<const link::PacketRecord> packets, double bucket_width_db,
    std::uint64_t min_packets_per_bucket) {
  if (bucket_width_db <= 0.0) {
    throw std::invalid_argument("NtriesFitSamples: bucket width must be > 0");
  }
  struct Acc {
    double snr_center = 0.0;
    std::uint64_t count = 0;
    double total_tries = 0.0;
  };
  std::map<std::pair<int, long>, Acc> buckets;
  for (const auto& p : packets) {
    if (!p.acked || p.first_delivered_at == link::kNever) continue;
    const long idx = BucketIndex(p.snr_db, bucket_width_db);
    auto& acc = buckets[{p.payload_bytes, idx}];
    acc.snr_center = BucketCenter(idx, bucket_width_db);
    ++acc.count;
    acc.total_tries += static_cast<double>(p.tries);
  }
  std::vector<core::fit::ScaledExpSample> samples;
  for (const auto& [key, acc] : buckets) {
    if (acc.count < min_packets_per_bucket) continue;
    core::fit::ScaledExpSample s;
    s.payload_bytes = static_cast<double>(key.first);
    s.snr_db = acc.snr_center;
    s.value = acc.total_tries / static_cast<double>(acc.count) - 1.0;
    samples.push_back(s);
  }
  return samples;
}

}  // namespace wsnlink::metrics
