// Time-windowed metrics.
//
// The whole-run metrics of link_metrics.h average over the run; dynamic
// scenarios (mobility, adaptive reconfiguration, interference episodes)
// need the metrics *over time*. This module slices the per-packet log into
// fixed windows by arrival time and computes the metric vector per window,
// giving the goodput/loss/delay time series the dynamic studies plot.
#pragma once

#include <vector>

#include "link/packet_log.h"
#include "sim/time.h"

namespace wsnlink::metrics {

/// Metrics of one time window.
struct WindowMetrics {
  sim::Time window_start = 0;
  sim::Time window_end = 0;
  int arrivals = 0;
  int delivered = 0;
  double goodput_kbps = 0.0;      ///< delivered payload bits / window length
  double plr_total = 0.0;         ///< 1 - delivered/arrivals
  double plr_queue = 0.0;
  double mean_delay_ms = 0.0;     ///< over delivered packets of the window
  double mean_tries = 0.0;        ///< over served packets of the window
  double energy_uj_per_bit = 0.0; ///< tx energy / delivered bits (0 if none)
};

/// Slices packets into consecutive windows of `window` length, from t = 0
/// through the last arrival. Packets are assigned by arrival time.
/// Requires window > 0. Returns an empty vector for an empty log.
[[nodiscard]] std::vector<WindowMetrics> ComputeTimeline(
    const link::PacketLog& log, sim::Duration window);

}  // namespace wsnlink::metrics
