#include "metrics/latency.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "link/packet_log.h"
#include "util/stats.h"

namespace wsnlink::metrics {

double LatencyProfile::QuantileMs(double p) const {
  if (Empty()) throw std::logic_error("LatencyProfile::QuantileMs on empty profile");
  return util::Quantile(sorted_delays_ms, p);
}

double LatencyProfile::Ccdf(double t_ms) const {
  if (Empty()) throw std::logic_error("LatencyProfile::Ccdf on empty profile");
  return util::EmpiricalCcdf(sorted_delays_ms, t_ms);
}

double LatencyProfile::MinMs() const {
  if (Empty()) throw std::logic_error("LatencyProfile::MinMs on empty profile");
  return sorted_delays_ms.front();
}

double LatencyProfile::MaxMs() const {
  if (Empty()) throw std::logic_error("LatencyProfile::MaxMs on empty profile");
  return sorted_delays_ms.back();
}

int LatencyProfile::MaxQueueDepth() const noexcept {
  int worst = 0;
  for (const int d : queue_depths_at_arrival) worst = std::max(worst, d);
  return worst;
}

util::Histogram LatencyProfile::ToHistogram(double lo_ms, double hi_ms,
                                            std::size_t bins) const {
  util::Histogram h(lo_ms, hi_ms, bins);
  for (const double d : sorted_delays_ms) h.Add(d);
  return h;
}

std::string LatencyProfile::Serialize() const {
  std::string out;
  out.reserve(sorted_delays_ms.size() * 12);
  char buf[32];
  for (const double d : sorted_delays_ms) {
    std::snprintf(buf, sizeof(buf), "%.6f\n", d);
    out += buf;
  }
  return out;
}

LatencyProfile CollectLatencies(const node::SimulationResult& result) {
  LatencyProfile profile;
  for (const auto& p : result.log.Packets()) {
    if (p.dropped_at_queue) continue;
    profile.queue_depths_at_arrival.push_back(p.queue_depth_at_arrival);
    if (p.first_delivered_at == link::kNever) continue;
    profile.sorted_delays_ms.push_back(
        sim::ToMilliseconds(p.first_delivered_at - p.arrived_at));
  }
  std::sort(profile.sorted_delays_ms.begin(), profile.sorted_delays_ms.end());
  return profile;
}

}  // namespace wsnlink::metrics
