#include "metrics/timeline.h"

#include <stdexcept>

#include "util/units.h"

namespace wsnlink::metrics {

std::vector<WindowMetrics> ComputeTimeline(const link::PacketLog& log,
                                           sim::Duration window) {
  if (window <= 0) {
    throw std::invalid_argument("ComputeTimeline: window must be > 0");
  }
  const auto& packets = log.Packets();
  if (packets.empty()) return {};

  sim::Time last_arrival = 0;
  for (const auto& p : packets) {
    last_arrival = std::max(last_arrival, p.arrived_at);
  }
  const auto windows = static_cast<std::size_t>(last_arrival / window) + 1;

  struct Acc {
    int arrivals = 0;
    int delivered = 0;
    int served = 0;
    int queue_drops = 0;
    std::int64_t delivered_payload_bytes = 0;
    double delay_ms_sum = 0.0;
    double tries_sum = 0.0;
    double energy_uj = 0.0;
  };
  std::vector<Acc> accs(windows);

  for (const auto& p : packets) {
    auto& acc = accs[static_cast<std::size_t>(p.arrived_at / window)];
    ++acc.arrivals;
    if (p.dropped_at_queue) {
      ++acc.queue_drops;
      continue;
    }
    ++acc.served;
    acc.tries_sum += static_cast<double>(p.tries);
    acc.energy_uj += p.tx_energy_uj;
    if (p.delivered) {
      ++acc.delivered;
      acc.delivered_payload_bytes += p.payload_bytes;
      if (p.first_delivered_at != link::kNever) {
        acc.delay_ms_sum +=
            sim::ToMilliseconds(p.first_delivered_at - p.arrived_at);
      }
    }
  }

  std::vector<WindowMetrics> out;
  out.reserve(windows);
  for (std::size_t i = 0; i < windows; ++i) {
    const Acc& acc = accs[i];
    WindowMetrics w;
    w.window_start = static_cast<sim::Time>(i) * window;
    w.window_end = w.window_start + window;
    w.arrivals = acc.arrivals;
    w.delivered = acc.delivered;
    const double bits =
        util::kBitsPerByte * static_cast<double>(acc.delivered_payload_bytes);
    w.goodput_kbps = bits / sim::ToSeconds(window) / 1000.0;
    if (acc.arrivals > 0) {
      w.plr_total = 1.0 - static_cast<double>(acc.delivered) /
                              static_cast<double>(acc.arrivals);
      w.plr_queue = static_cast<double>(acc.queue_drops) /
                    static_cast<double>(acc.arrivals);
    }
    if (acc.delivered > 0) {
      w.mean_delay_ms = acc.delay_ms_sum / static_cast<double>(acc.delivered);
    }
    if (acc.served > 0) {
      w.mean_tries = acc.tries_sum / static_cast<double>(acc.served);
    }
    if (bits > 0.0) {
      w.energy_uj_per_bit = acc.energy_uj / bits;
    }
    out.push_back(w);
  }
  return out;
}

}  // namespace wsnlink::metrics
