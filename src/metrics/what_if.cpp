#include "metrics/what_if.h"

#include <cmath>
#include <stdexcept>

#include "core/models/service_time_model.h"
#include "phy/frame.h"

namespace wsnlink::metrics {

double CounterfactualPer(std::span<const link::AttemptRecord> trace,
                         const channel::BerModel& ber, int payload_bytes) {
  phy::ValidatePayloadSize(payload_bytes);
  if (trace.empty()) {
    throw std::invalid_argument("CounterfactualPer: empty trace");
  }
  const int frame_bytes = phy::DataFrameBytes(payload_bytes);
  double fail_sum = 0.0;
  for (const auto& attempt : trace) {
    const double data_ok =
        ber.FrameSuccessProbability(attempt.snr_db, frame_bytes);
    const double ack_ok =
        ber.FrameSuccessProbability(attempt.snr_db, phy::kAckFrameBytes);
    fail_sum += 1.0 - data_ok * ack_ok;
  }
  return fail_sum / static_cast<double>(trace.size());
}

std::vector<WhatIfResult> PayloadWhatIf(
    std::span<const link::AttemptRecord> trace, const channel::BerModel& ber,
    std::span<const int> payloads, int max_tries, double retry_delay_ms) {
  if (max_tries < 1) {
    throw std::invalid_argument("PayloadWhatIf: max_tries must be >= 1");
  }
  if (retry_delay_ms < 0.0) {
    throw std::invalid_argument("PayloadWhatIf: retry delay must be >= 0");
  }
  using core::models::ServiceTimeModel;

  std::vector<WhatIfResult> results;
  results.reserve(payloads.size());
  for (const int payload : payloads) {
    WhatIfResult r;
    r.payload_bytes = payload;
    r.per = CounterfactualPer(trace, ber, payload);
    r.plr_radio = std::pow(r.per, max_tries);

    // Truncated-geometric expected tries for a delivered packet.
    const double p = r.per;
    const double mean_tries =
        p <= 0.0 ? 1.0 : (1.0 - std::pow(p, max_tries)) / (1.0 - p);

    const double t_delivered =
        ServiceTimeModel::SpiTimeMs(payload) +
        ServiceTimeModel::SuccessTailMs(payload) +
        (mean_tries - 1.0) *
            ServiceTimeModel::RetryCostMs(payload, retry_delay_ms);
    const double t_lost =
        ServiceTimeModel::SpiTimeMs(payload) +
        ServiceTimeModel::FailureTailMs(payload) +
        static_cast<double>(max_tries - 1) *
            ServiceTimeModel::RetryCostMs(payload, retry_delay_ms);
    const double t_mean =
        (1.0 - r.plr_radio) * t_delivered + r.plr_radio * t_lost;
    r.max_goodput_kbps =
        8.0 * static_cast<double>(payload) / t_mean * (1.0 - r.plr_radio);
    results.push_back(r);
  }
  return results;
}

int BestPayloadOnTrace(std::span<const link::AttemptRecord> trace,
                       const channel::BerModel& ber, int max_tries,
                       double retry_delay_ms) {
  std::vector<int> candidates;
  candidates.reserve(static_cast<std::size_t>(phy::kMaxPayloadBytes));
  for (int l = 1; l <= phy::kMaxPayloadBytes; ++l) candidates.push_back(l);
  const auto results =
      PayloadWhatIf(trace, ber, candidates, max_tries, retry_delay_ms);
  int best = 1;
  double best_goodput = -1.0;
  for (const auto& r : results) {
    if (r.max_goodput_kbps > best_goodput) {
      best_goodput = r.max_goodput_kbps;
      best = r.payload_bytes;
    }
  }
  return best;
}

}  // namespace wsnlink::metrics
