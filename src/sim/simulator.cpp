#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace wsnlink::sim {

void EventHandle::Cancel() noexcept {
  if (state_) state_->cancelled = true;
}

bool EventHandle::Pending() const noexcept {
  return state_ && !state_->cancelled && !state_->fired;
}

void Simulator::AttachTrace(const trace::TraceContext& ctx) {
  counters_ = ctx.counters;
  if (counters_ != nullptr) {
    id_scheduled_ = counters_->Register("sim.events_scheduled");
    id_executed_ = counters_->Register("sim.events_executed");
    id_cancelled_ = counters_->Register("sim.events_cancelled");
  }
}

EventHandle Simulator::Schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::Schedule: negative delay");
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("Simulator::ScheduleAt: time in the past");
  if (!fn) throw std::invalid_argument("Simulator::ScheduleAt: empty callback");
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{at, next_seq_++, std::move(fn), state});
  if (counters_ != nullptr) counters_->Add(id_scheduled_);
  return EventHandle(std::move(state));
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the entry must be copied out before pop.
    Entry entry = queue_.top();
    queue_.pop();
    if (entry.state->cancelled) {
      if (counters_ != nullptr) counters_->Add(id_cancelled_);
      continue;
    }
    now_ = entry.at;
    entry.state->fired = true;
    ++executed_;
    if (counters_ != nullptr) counters_->Add(id_executed_);
    entry.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::RunUntil(Time until) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Skip cancelled heads without advancing the clock.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      if (counters_ != nullptr) counters_->Add(id_cancelled_);
      continue;
    }
    if (queue_.top().at > until) break;
    if (Step()) ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

std::size_t Simulator::Run() {
  std::size_t count = 0;
  while (Step()) ++count;
  return count;
}

}  // namespace wsnlink::sim
