#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace wsnlink::sim {

void EventHandle::Cancel() noexcept {
  if (sim_ != nullptr) sim_->CancelSlot(slot_, ticket_);
}

bool EventHandle::Pending() const noexcept {
  return sim_ != nullptr && sim_->SlotPending(slot_, ticket_);
}

void Simulator::Reset() noexcept {
  // Release pending events through the normal path: callbacks destroyed,
  // generations bumped (stale handles stay stale), slots recycled.
  for (const HeapEntry& entry : heap_) ReleaseSlot(entry.slot);
  heap_.clear();
  now_ = 0;
  last_event_at_ = 0;
  lane_seq_.assign(1, 0);  // back to the single default lane, capacity kept
  current_lane_ = 0;
  executed_ = 0;
  counters_ = nullptr;
}

void Simulator::ConfigureLanes(std::uint32_t count) {
  if (count < 1 || count > kMaxLanes) {
    throw std::invalid_argument(
        "Simulator::ConfigureLanes: lane count must be in [1, 65536]");
  }
  lane_seq_.assign(count, 0);
  current_lane_ = 0;
}

void Simulator::SetCurrentLane(std::uint32_t lane) {
  if (lane >= lane_seq_.size()) {
    throw std::invalid_argument("Simulator::SetCurrentLane: unknown lane");
  }
  current_lane_ = lane;
}

void Simulator::SaveState(Snapshot& out) const {
  out.now = now_;
  out.last_event_at = last_event_at_;
  out.executed = executed_;
  out.current_lane = current_lane_;
  out.lane_seq.assign(lane_seq_.begin(), lane_seq_.end());
  out.events.clear();
  out.events.reserve(heap_.size());
  for (const HeapEntry& entry : heap_) {
    EventImage image;
    image.at = entry.at;
    image.key = entry.seq;
    image.fn = slots_[entry.slot].fn.Clone();
    out.events.push_back(std::move(image));
  }
}

void Simulator::RestoreState(const Snapshot& snapshot) {
  for (const HeapEntry& entry : heap_) ReleaseSlot(entry.slot);
  heap_.clear();
  now_ = snapshot.now;
  last_event_at_ = snapshot.last_event_at;
  executed_ = snapshot.executed;
  current_lane_ = snapshot.current_lane;
  lane_seq_.assign(snapshot.lane_seq.begin(), snapshot.lane_seq.end());
  for (const EventImage& image : snapshot.events) {
    InsertWithKey(image.at, image.key, image.fn.Clone());
  }
}

void Simulator::AttachTrace(const trace::TraceContext& ctx) {
  counters_ = ctx.counters;
  if (counters_ != nullptr) {
    id_scheduled_ = counters_->Register("sim.events_scheduled");
    id_executed_ = counters_->Register("sim.events_executed");
    id_cancelled_ = counters_->Register("sim.events_cancelled");
  }
}

std::uint32_t Simulator::AcquireSlot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn.Reset();
  ++s.generation;  // invalidates outstanding handles
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::SiftUp(std::uint32_t pos) noexcept {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!Before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = pos;
}

void Simulator::SiftDown(std::uint32_t pos) noexcept {
  const HeapEntry entry = heap_[pos];
  const auto size = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size && Before(heap_[child + 1], heap_[child])) ++child;
    if (!Before(heap_[child], entry)) break;
    heap_[pos] = heap_[child];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = pos;
}

void Simulator::HeapRemove(std::uint32_t pos) noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  heap_[pos] = last;
  slots_[last.slot].heap_pos = pos;
  // The replacement may need to move either way relative to its new
  // neighbourhood.
  if (pos > 0 && Before(last, heap_[(pos - 1) / 2])) {
    SiftUp(pos);
  } else {
    SiftDown(pos);
  }
}

void Simulator::CancelSlot(std::uint32_t slot, std::uint64_t ticket) noexcept {
  if (!SlotPending(slot, ticket)) return;
  HeapRemove(slots_[slot].heap_pos);
  ReleaseSlot(slot);
  if (counters_ != nullptr) counters_->Add(id_cancelled_);
}

bool Simulator::SlotPending(std::uint32_t slot,
                            std::uint64_t ticket) const noexcept {
  return slot < slots_.size() && slots_[slot].generation == ticket;
}

EventHandle Simulator::Schedule(Duration delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::Schedule: negative delay");
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(Time at, EventFn fn) {
  if (at < now_) throw std::invalid_argument("Simulator::ScheduleAt: time in the past");
  if (!fn) throw std::invalid_argument("Simulator::ScheduleAt: empty callback");
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.at = at;
  s.fn = std::move(fn);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(current_lane_) << kLaneShift) |
      lane_seq_[current_lane_]++;
  heap_.push_back(HeapEntry{at, key, slot});
  SiftUp(static_cast<std::uint32_t>(heap_.size() - 1));
  if (counters_ != nullptr) counters_->Add(id_scheduled_);
  return EventHandle(this, slot, s.generation);
}

void Simulator::InsertWithKey(Time at, std::uint64_t key, EventFn fn) {
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.at = at;
  s.fn = std::move(fn);
  heap_.push_back(HeapEntry{at, key, slot});
  SiftUp(static_cast<std::uint32_t>(heap_.size() - 1));
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  HeapRemove(0);
  now_ = top.at;
  last_event_at_ = top.at;
  // The event executes in its scheduler's lane, so events it schedules in
  // turn inherit that lane (node-local causality keeps its own key stream).
  current_lane_ = static_cast<std::uint32_t>(top.seq >> kLaneShift);
  // Move the callback out and recycle the slot *before* invoking: the
  // callback will typically schedule follow-up events that reuse it.
  EventFn fn = std::move(slots_[top.slot].fn);
  ReleaseSlot(top.slot);
  ++executed_;
  if (counters_ != nullptr) counters_->Add(id_executed_);
  fn();
  return true;
}

std::size_t Simulator::RunUntil(Time until) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_[0].at <= until) {
    if (Step()) ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

std::size_t Simulator::Run() {
  std::size_t count = 0;
  while (Step()) ++count;
  return count;
}

}  // namespace wsnlink::sim
