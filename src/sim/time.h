// Simulated time.
//
// Time is an integer count of microseconds since simulation start. Integer
// time makes event ordering exact (no FP ties) and microsecond resolution is
// two orders of magnitude finer than the smallest stack timing constant in
// the paper (the 224 us RX/TX turnaround).
#pragma once

#include <cstdint>

namespace wsnlink::sim {

/// Absolute simulated time in microseconds.
using Time = std::int64_t;

/// Relative duration in microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1'000'000;

/// Converts fractional milliseconds to a Duration, rounding to nearest.
[[nodiscard]] constexpr Duration FromMilliseconds(double ms) noexcept {
  return static_cast<Duration>(ms * 1000.0 + (ms >= 0 ? 0.5 : -0.5));
}

/// Converts fractional seconds to a Duration, rounding to nearest.
[[nodiscard]] constexpr Duration FromSeconds(double s) noexcept {
  return static_cast<Duration>(s * 1'000'000.0 + (s >= 0 ? 0.5 : -0.5));
}

/// Duration expressed in fractional milliseconds.
[[nodiscard]] constexpr double ToMilliseconds(Duration d) noexcept {
  return static_cast<double>(d) / 1000.0;
}

/// Duration expressed in fractional seconds.
[[nodiscard]] constexpr double ToSeconds(Duration d) noexcept {
  return static_cast<double>(d) / 1'000'000.0;
}

}  // namespace wsnlink::sim
