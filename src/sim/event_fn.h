// Small-buffer type-erased callable for simulator events.
//
// The event kernel fires ~7 events per simulated packet, so the cost of the
// callable wrapper is squarely on the campaign hot path. std::function pays
// for copyability and unbounded capture sizes with a potential heap
// allocation and a double indirection per call; every callback the stack
// schedules is a move-only lambda capturing at most a `this` pointer and a
// couple of scalars. EventFn stores such callables inline (48 bytes) with a
// single manager function for move/destroy, falling back to the heap only
// for oversized captures so the API stays general.
//
// wsnlint:allow(no-naked-new): the heap fallback is the type-erased storage
// itself — ownership is encoded in manage_(Op::kDestroy), which unique_ptr
// cannot express through a void* buffer.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace wsnlink::sim {

/// Move-only `void()` callable with inline small-buffer storage.
class EventFn {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineSize &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(buffer_)) Decayed(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Decayed*>(p)))(); };
      manage_ = [](Op op, void* p, void* dst) {
        auto* self = std::launder(reinterpret_cast<Decayed*>(p));
        if (op == Op::kCopy) {
          if constexpr (std::is_copy_constructible_v<Decayed>) {
            ::new (dst) Decayed(*self);
          } else {
            throw std::logic_error("EventFn::Clone: callback not copyable");
          }
          return;
        }
        if (op == Op::kMove) ::new (dst) Decayed(std::move(*self));
        self->~Decayed();
      };
    } else {
      // Oversized capture: one heap allocation, pointer stored inline.
      auto* heap = new Decayed(std::forward<F>(f));
      ::new (static_cast<void*>(buffer_)) Decayed*(heap);
      invoke_ = [](void* p) {
        (**std::launder(reinterpret_cast<Decayed**>(p)))();
      };
      manage_ = [](Op op, void* p, void* dst) {
        auto* slot = std::launder(reinterpret_cast<Decayed**>(p));
        if (op == Op::kCopy) {
          if constexpr (std::is_copy_constructible_v<Decayed>) {
            ::new (dst) Decayed*(new Decayed(**slot));
          } else {
            throw std::logic_error("EventFn::Clone: callback not copyable");
          }
          return;
        }
        if (op == Op::kMove) ::new (dst) Decayed*(*slot);
        else delete *slot;
      };
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buffer_); }

  void Reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, buffer_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Deep copy of the stored callable (the speculative engine's event-queue
  /// snapshots clone pending events so a rollback can re-schedule them).
  /// Every callback the stack schedules captures `this` plus scalars and is
  /// therefore copyable; a non-copyable capture throws std::logic_error.
  [[nodiscard]] EventFn Clone() const {
    EventFn copy;
    if (manage_ != nullptr) {
      manage_(Op::kCopy,
              const_cast<unsigned char*>(buffer_),  // read-only for kCopy
              copy.buffer_);
      copy.invoke_ = invoke_;
      copy.manage_ = manage_;
    }
    return copy;
  }

 private:
  enum class Op { kMove, kCopy, kDestroy };

  void MoveFrom(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(Op::kMove, other.buffer_, buffer_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void* src, void* dst) = nullptr;
};

}  // namespace wsnlink::sim
