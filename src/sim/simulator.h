// Discrete-event simulation kernel.
//
// A single-threaded event loop over an *indexed* binary heap keyed by
// (time, sequence). The sequence number makes scheduling FIFO-stable for
// events at the same timestamp, which keeps traces deterministic.
//
// Event storage is pooled: each scheduled event lives in a reusable slot of
// a per-simulator slab (no per-event heap allocation), its callback in
// inline small-buffer storage (see event_fn.h). The heap is an array of
// slot indices and every slot knows its heap position, so cancellation is a
// true O(log n) removal instead of a tombstone that poisons the queue until
// popped — and, more importantly for the campaign hot path, scheduling an
// event costs zero allocations in steady state.
//
// The rework is observationally identical to the previous tombstone kernel:
// events execute in the same (time, seq) order, a cancelled event never
// runs, and the "sim.events_cancelled" counter totals match at run end
// (cancellations are now counted when Cancel() lands instead of when the
// tombstone would have been popped).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace wsnlink::sim {

class Simulator;

/// Cancellation handle for a scheduled event.
///
/// Copyable; all copies refer to the same scheduled event. A default-
/// constructed handle refers to nothing and Cancel() on it is a no-op.
/// A handle must not outlive the simulator that issued it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Removes the event from the queue if it has not fired yet. Safe to call
  /// multiple times, and safe to call after the event has fired (no effect).
  void Cancel() noexcept;

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool Pending() const noexcept;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t ticket)
      : sim_(sim), slot_(slot), ticket_(ticket) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  // Generation stamp of the slot at scheduling time; a stale ticket means
  // the event already fired (or was cancelled) and the slot was recycled.
  std::uint64_t ticket_ = 0;
};

/// The event loop.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time Now() const noexcept { return now_; }

  /// Schedules `fn` to run at `Now() + delay`. Requires delay >= 0.
  /// Returns a handle that can cancel the event before it fires.
  EventHandle Schedule(Duration delay, EventFn fn);

  /// Schedules `fn` at an absolute time. Requires at >= Now().
  EventHandle ScheduleAt(Time at, EventFn fn);

  /// Runs events until the queue empties or the clock would pass `until`.
  /// Events scheduled exactly at `until` are executed. Returns the number of
  /// events executed.
  std::size_t RunUntil(Time until);

  /// Runs until the queue is empty. Returns the number of events executed.
  std::size_t Run();

  /// Executes at most one event; returns false if the queue is empty.
  bool Step();

  /// Number of events currently queued (cancelled events leave immediately).
  [[nodiscard]] std::size_t QueueSize() const noexcept { return heap_.size(); }

  /// Total number of events executed so far (excludes cancelled ones).
  [[nodiscard]] std::uint64_t EventsExecuted() const noexcept { return executed_; }

  /// Attaches observability sinks; the kernel maintains the
  /// "sim.events_scheduled" / "sim.events_executed" /
  /// "sim.events_cancelled" counters. The context's pointees must outlive
  /// the simulator.
  void AttachTrace(const trace::TraceContext& ctx);

  /// Rewinds the kernel for a fresh run while KEEPING the slot pool and
  /// heap capacity (the zero-alloc reuse contract of the sweep hot path).
  /// Pending callbacks are destroyed, the clock and counters return to
  /// zero, and the trace attachment is dropped (re-attach per run). Slot
  /// generations stay monotonic so handles from before the Reset remain
  /// inert rather than aliasing new events.
  void Reset() noexcept;

 private:
  friend class EventHandle;

  struct Slot {
    Time at = 0;
    // Bumped every time the slot is released; EventHandle tickets compare
    // against it so stale handles are inert.
    std::uint64_t generation = 0;
    std::uint32_t heap_pos = 0;
    std::uint32_t next_free = kNoSlot;
    EventFn fn;
  };

  // Heap entries carry the (time, seq) sort key inline so sift comparisons
  // stay within the heap array instead of chasing slot indirections.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNoSlot = ~0u;

  static bool Before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot) noexcept;
  void SiftUp(std::uint32_t pos) noexcept;
  void SiftDown(std::uint32_t pos) noexcept;
  void HeapRemove(std::uint32_t pos) noexcept;
  void CancelSlot(std::uint32_t slot, std::uint64_t ticket) noexcept;
  [[nodiscard]] bool SlotPending(std::uint32_t slot,
                                 std::uint64_t ticket) const noexcept;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Slot> slots_;      // event pool (grows to peak queue depth)
  std::vector<HeapEntry> heap_;  // binary heap over (time, seq)
  std::uint32_t free_head_ = kNoSlot;

  trace::CounterRegistry* counters_ = nullptr;
  trace::CounterRegistry::Id id_scheduled_ = 0;
  trace::CounterRegistry::Id id_executed_ = 0;
  trace::CounterRegistry::Id id_cancelled_ = 0;
};

}  // namespace wsnlink::sim
