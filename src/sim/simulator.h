// Discrete-event simulation kernel.
//
// A single-threaded event loop over a binary heap keyed by (time, sequence).
// The sequence number makes scheduling FIFO-stable for events at the same
// timestamp, which keeps traces deterministic. Events are type-erased
// callbacks; cancellation is supported through handles (a cancelled event
// stays in the heap but is skipped when popped — cheap and sufficient for
// the MAC's ACK-timeout pattern).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace wsnlink::sim {

/// Cancellation handle for a scheduled event.
///
/// Copyable; all copies refer to the same scheduled event. A default-
/// constructed handle refers to nothing and Cancel() on it is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Marks the event as cancelled. Safe to call multiple times, and safe to
  /// call after the event has fired (no effect).
  void Cancel() noexcept;

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool Pending() const noexcept;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// The event loop.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time Now() const noexcept { return now_; }

  /// Schedules `fn` to run at `Now() + delay`. Requires delay >= 0.
  /// Returns a handle that can cancel the event before it fires.
  EventHandle Schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time. Requires at >= Now().
  EventHandle ScheduleAt(Time at, std::function<void()> fn);

  /// Runs events until the queue empties or the clock would pass `until`.
  /// Events scheduled exactly at `until` are executed. Returns the number of
  /// events executed.
  std::size_t RunUntil(Time until);

  /// Runs until the queue is empty. Returns the number of events executed.
  std::size_t Run();

  /// Executes at most one event; returns false if the queue is empty.
  bool Step();

  /// Number of events currently queued (including cancelled-but-unpopped).
  [[nodiscard]] std::size_t QueueSize() const noexcept { return queue_.size(); }

  /// Total number of events executed so far (excludes cancelled ones).
  [[nodiscard]] std::uint64_t EventsExecuted() const noexcept { return executed_; }

  /// Attaches observability sinks; the kernel maintains the
  /// "sim.events_scheduled" / "sim.events_executed" /
  /// "sim.events_cancelled" counters. The context's pointees must outlive
  /// the simulator.
  void AttachTrace(const trace::TraceContext& ctx);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;

  trace::CounterRegistry* counters_ = nullptr;
  trace::CounterRegistry::Id id_scheduled_ = 0;
  trace::CounterRegistry::Id id_executed_ = 0;
  trace::CounterRegistry::Id id_cancelled_ = 0;
};

}  // namespace wsnlink::sim
