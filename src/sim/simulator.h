// Discrete-event simulation kernel.
//
// A single-threaded event loop over an *indexed* binary heap keyed by
// (time, sequence). The sequence number makes scheduling FIFO-stable for
// events at the same timestamp, which keeps traces deterministic.
//
// The sequence is *lane-structured*: the high 16 bits carry the lane of the
// scheduling context (a lane = one node of a multi-node run; single-link
// runs use the single default lane, whose keys are numerically identical to
// a plain global counter) and the low 48 bits a per-lane counter. Same-time
// events therefore order by (lane, lane-local order) instead of global
// scheduling order — a tie-break that any partition of the lanes across
// per-LP simulators reproduces exactly, which is what makes the optimistic
// parallel engine (node/timewarp.h) bit-identical to this sequential loop.
//
// Event storage is pooled: each scheduled event lives in a reusable slot of
// a per-simulator slab (no per-event heap allocation), its callback in
// inline small-buffer storage (see event_fn.h). The heap is an array of
// slot indices and every slot knows its heap position, so cancellation is a
// true O(log n) removal instead of a tombstone that poisons the queue until
// popped — and, more importantly for the campaign hot path, scheduling an
// event costs zero allocations in steady state.
//
// The rework is observationally identical to the previous tombstone kernel:
// events execute in the same (time, seq) order, a cancelled event never
// runs, and the "sim.events_cancelled" counter totals match at run end
// (cancellations are now counted when Cancel() lands instead of when the
// tombstone would have been popped).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace wsnlink::sim {

class Simulator;

/// Cancellation handle for a scheduled event.
///
/// Copyable; all copies refer to the same scheduled event. A default-
/// constructed handle refers to nothing and Cancel() on it is a no-op.
/// A handle must not outlive the simulator that issued it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Removes the event from the queue if it has not fired yet. Safe to call
  /// multiple times, and safe to call after the event has fired (no effect).
  void Cancel() noexcept;

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool Pending() const noexcept;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t ticket)
      : sim_(sim), slot_(slot), ticket_(ticket) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  // Generation stamp of the slot at scheduling time; a stale ticket means
  // the event already fired (or was cancelled) and the slot was recycled.
  std::uint64_t ticket_ = 0;
};

/// The event loop.
class Simulator {
 public:
  /// A pending event lifted out of the queue: enough to re-create it with
  /// an identical (time, sequence) key. Move-only (owns a callback clone).
  struct EventImage {
    Time at = 0;
    std::uint64_t key = 0;
    EventFn fn;
  };

  /// Full kernel state at one instant (clock, per-lane sequence counters
  /// and a deep copy of every pending event). Move-only; reusable — saving
  /// into a warm snapshot reuses its vector capacity.
  struct Snapshot {
    Time now = 0;
    Time last_event_at = 0;
    std::uint64_t executed = 0;
    std::uint32_t current_lane = 0;
    std::vector<std::uint64_t> lane_seq;
    std::vector<EventImage> events;
  };

  /// Largest lane table ConfigureLanes accepts (the key's 16-bit lane
  /// field); topologies beyond it fall back to single-lane keys.
  static constexpr std::uint32_t kMaxLanes = 1u << 16;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time Now() const noexcept { return now_; }

  /// Schedules `fn` to run at `Now() + delay`. Requires delay >= 0.
  /// Returns a handle that can cancel the event before it fires.
  EventHandle Schedule(Duration delay, EventFn fn);

  /// Schedules `fn` at an absolute time. Requires at >= Now().
  EventHandle ScheduleAt(Time at, EventFn fn);

  /// Runs events until the queue empties or the clock would pass `until`.
  /// Events scheduled exactly at `until` are executed. Returns the number of
  /// events executed.
  std::size_t RunUntil(Time until);

  /// Runs until the queue is empty. Returns the number of events executed.
  std::size_t Run();

  /// Executes at most one event; returns false if the queue is empty.
  bool Step();

  /// Number of events currently queued (cancelled events leave immediately).
  [[nodiscard]] std::size_t QueueSize() const noexcept { return heap_.size(); }

  /// Total number of events executed so far (excludes cancelled ones).
  [[nodiscard]] std::uint64_t EventsExecuted() const noexcept { return executed_; }

  /// Timestamp of the most recently executed event (0 before the first).
  /// Unlike Now(), RunUntil's final clock advance does not touch this, so
  /// it is the run-envelope end time a windowed execution reports.
  [[nodiscard]] Time LastEventAt() const noexcept { return last_event_at_; }

  /// Timestamp of the next pending event; true when one exists. Lets a
  /// windowed driver peek without popping.
  [[nodiscard]] bool PeekNextEventAt(Time& at) const noexcept {
    if (heap_.empty()) return false;
    at = heap_[0].at;
    return true;
  }

  /// Declares `count` scheduling lanes (>= 1, <= 65536) and resets every
  /// lane counter. Call before the run starts; the default is one lane,
  /// under which keys are numerically identical to a global counter.
  void ConfigureLanes(std::uint32_t count);

  /// Selects the lane subsequent Schedule/ScheduleAt calls stamp into their
  /// keys. Event execution overwrites this with the fired event's own lane,
  /// so follow-up events inherit their scheduler's lane automatically; set
  /// it explicitly only around out-of-event scheduling (per-node Start()).
  void SetCurrentLane(std::uint32_t lane);

  [[nodiscard]] std::uint32_t CurrentLane() const noexcept {
    return current_lane_;
  }

  /// Copies the kernel's full state into `out` (clock, lane counters, a
  /// deep clone of every pending event). Reuses `out`'s capacity.
  void SaveState(Snapshot& out) const;

  /// Restores state captured by SaveState: pending events are rebuilt with
  /// their original keys, so execution order after a rollback is identical
  /// to the original timeline. Trace attachment is left untouched and no
  /// scheduling counters are bumped (the caller rolls counters back
  /// separately).
  void RestoreState(const Snapshot& snapshot);

  /// Attaches observability sinks; the kernel maintains the
  /// "sim.events_scheduled" / "sim.events_executed" /
  /// "sim.events_cancelled" counters. The context's pointees must outlive
  /// the simulator.
  void AttachTrace(const trace::TraceContext& ctx);

  /// Rewinds the kernel for a fresh run while KEEPING the slot pool and
  /// heap capacity (the zero-alloc reuse contract of the sweep hot path).
  /// Pending callbacks are destroyed, the clock and counters return to
  /// zero, and the trace attachment is dropped (re-attach per run). Slot
  /// generations stay monotonic so handles from before the Reset remain
  /// inert rather than aliasing new events.
  void Reset() noexcept;

 private:
  friend class EventHandle;

  struct Slot {
    Time at = 0;
    // Bumped every time the slot is released; EventHandle tickets compare
    // against it so stale handles are inert.
    std::uint64_t generation = 0;
    std::uint32_t heap_pos = 0;
    std::uint32_t next_free = kNoSlot;
    EventFn fn;
  };

  // Heap entries carry the (time, seq) sort key inline so sift comparisons
  // stay within the heap array instead of chasing slot indirections.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNoSlot = ~0u;
  /// Lane id lives in the key's top bits, the per-lane counter below it.
  static constexpr unsigned kLaneShift = 48;

  static bool Before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint32_t AcquireSlot();
  /// Inserts a pending event with an explicit pre-assigned key (the restore
  /// path; ScheduleAt mints fresh keys via the lane counters instead).
  void InsertWithKey(Time at, std::uint64_t key, EventFn fn);
  void ReleaseSlot(std::uint32_t slot) noexcept;
  void SiftUp(std::uint32_t pos) noexcept;
  void SiftDown(std::uint32_t pos) noexcept;
  void HeapRemove(std::uint32_t pos) noexcept;
  void CancelSlot(std::uint32_t slot, std::uint64_t ticket) noexcept;
  [[nodiscard]] bool SlotPending(std::uint32_t slot,
                                 std::uint64_t ticket) const noexcept;

  Time now_ = 0;
  Time last_event_at_ = 0;
  std::vector<std::uint64_t> lane_seq_ = {0};  // per-lane key counters
  std::uint32_t current_lane_ = 0;
  std::uint64_t executed_ = 0;
  // wsnstatic:transient(slots_, free_head_): pool storage; RestoreState rebuilds both through ReleaseSlot/InsertWithKey from the saved event images
  std::vector<Slot> slots_;      // event pool (grows to peak queue depth)
  std::vector<HeapEntry> heap_;  // binary heap over (time, seq)
  std::uint32_t free_head_ = kNoSlot;

  // wsnstatic:transient(counters_, id_scheduled_, id_executed_, id_cancelled_): trace wiring fixed at attach time; rollback leaves trace attachment untouched by contract
  trace::CounterRegistry* counters_ = nullptr;
  trace::CounterRegistry::Id id_scheduled_ = 0;
  trace::CounterRegistry::Id id_executed_ = 0;
  trace::CounterRegistry::Id id_cancelled_ = 0;
};

}  // namespace wsnlink::sim
