// Replicated measurements: mean and confidence intervals across seeds.
//
// A single simulated run is one realisation of the channel; statements like
// Table IV's comparisons deserve error bars. This module runs one
// configuration under R independent seeds and reports the mean, standard
// deviation and normal-approximation confidence half-width of every scalar
// metric — the replication discipline a measurement study applies to its
// own claims.
#pragma once

#include <cstdint>

#include "metrics/link_metrics.h"
#include "node/link_simulation.h"

namespace wsnlink::experiment {

/// Mean / spread of one scalar metric across replicates.
struct ReplicatedScalar {
  double mean = 0.0;
  double stddev = 0.0;
  /// Half-width of the ~95% confidence interval (1.96 * stddev / sqrt(R)).
  double ci95_half_width = 0.0;
};

/// The replicated metric vector.
struct ReplicatedMetrics {
  int replicates = 0;
  ReplicatedScalar goodput_kbps;
  ReplicatedScalar energy_uj_per_bit;
  ReplicatedScalar mean_delay_ms;
  ReplicatedScalar per;
  ReplicatedScalar plr_total;
  ReplicatedScalar plr_radio;
  ReplicatedScalar plr_queue;
  ReplicatedScalar utilization;
};

/// Runs `options` under `replicates` derived seeds (deterministic in
/// options.seed) and aggregates. Requires replicates >= 2.
[[nodiscard]] ReplicatedMetrics MeasureReplicated(
    const node::SimulationOptions& options, int replicates);

/// True when the two replicated means are separated by more than the sum
/// of their 95% half-widths (a conservative "error bars do not overlap"
/// test used by the comparison benches).
[[nodiscard]] bool SignificantlyGreater(const ReplicatedScalar& a,
                                        const ReplicatedScalar& b);

}  // namespace wsnlink::experiment
