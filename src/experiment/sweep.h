// Parameter-sweep driver.
//
// Runs a list of configurations through the link simulator and collects the
// measured metric vector for each. Runs are embarrassingly parallel (each
// owns its simulator and RNG streams) so the driver fans out across
// hardware threads; results are deterministic in (base_seed, config order)
// regardless of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/stack_config.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "trace/trace.h"

namespace wsnlink::experiment {

/// One sweep result.
struct SweepPoint {
  core::StackConfig config;
  metrics::LinkMetrics measured;
  /// Ground-truth mean SNR of the simulated link.
  double mean_snr_db = 0.0;
  /// Per-layer counter roll-up of the run, sorted by name (empty when
  /// SweepOptions::collect_counters is false).
  std::vector<trace::CounterSample> counters;
  /// The run's full event stream (only when SweepOptions::capture_traces;
  /// each run owns its tracer, so capture stays deterministic under any
  /// thread count).
  std::vector<trace::TraceEvent> events;
};

/// Sweep options shared by every run.
struct SweepOptions {
  std::uint64_t base_seed = 1;
  /// Packets per configuration (paper: 4500; figure benches use less).
  int packet_count = 500;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Forwarded per-run simulation switches.
  bool analytic_ber = false;
  bool disable_temporal_shadowing = false;
  bool disable_interference = false;
  /// Collect per-layer counters into each SweepPoint.
  bool collect_counters = true;
  /// Capture each run's event trace into SweepPoint::events. Off by
  /// default: a trace is ~100 bytes/event and campaign sweeps are large.
  bool capture_traces = false;
  /// Ring capacity per run when capture_traces is set.
  std::size_t trace_capacity = trace::Tracer::kDefaultCapacity;
  /// Optional progress callback (invoked from worker threads with the
  /// number of completed runs; must be thread-safe). May be empty.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Seed for the i-th configuration of a sweep (exposed so single runs can
/// be reproduced outside the sweep).
[[nodiscard]] std::uint64_t SweepSeed(std::uint64_t base_seed,
                                      std::size_t index) noexcept;

/// Runs every configuration; the result vector parallels `configs`.
[[nodiscard]] std::vector<SweepPoint> RunSweep(
    const std::vector<core::StackConfig>& configs, const SweepOptions& options);

/// Convenience: per-attempt logs are often needed by figure benches; this
/// variant returns the full simulation results instead of just metrics.
[[nodiscard]] std::vector<node::SimulationResult> RunSweepRaw(
    const std::vector<core::StackConfig>& configs, const SweepOptions& options);

}  // namespace wsnlink::experiment
