// Parameter-sweep driver.
//
// Runs a list of configurations through the link simulator and collects the
// measured metric vector for each. Runs are embarrassingly parallel (each
// owns its simulator and RNG streams) so the driver fans out over the
// process-wide work-stealing pool (util::ThreadPool::Shared()) in batched
// config chunks — no per-sweep thread spawn. Results are deterministic in
// (base_seed, config order) regardless of worker count or chunk size: the
// i-th result always comes from seed SweepSeed(base_seed, i) and lands in
// the i-th output slot.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/stack_config.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "trace/trace.h"

namespace wsnlink::experiment {

/// One sweep result.
struct SweepPoint {
  core::StackConfig config;
  metrics::LinkMetrics measured;
  /// Ground-truth mean SNR of the simulated link.
  double mean_snr_db = 0.0;
  /// False when the analytic prescreen skipped this configuration; the
  /// measured fields then hold the ModelSet prediction instead of
  /// simulation output (see SweepOptions::analytic_prescreen).
  bool simulated = true;
  /// Per-layer counter roll-up of the run, sorted by name (empty when
  /// SweepOptions::collect_counters is false or the run was prescreened).
  std::vector<trace::CounterSample> counters;
  /// The run's full event stream (only when SweepOptions::capture_traces;
  /// each run owns its tracer, so capture stays deterministic under any
  /// thread count).
  std::vector<trace::TraceEvent> events;
  /// True when this config's worker task threw: `error` carries the
  /// structured message, the measured fields are left zeroed, and the
  /// sweep continues — one bad config never tears down the campaign
  /// (the campaign counts these as "campaign.configs_failed").
  bool failed = false;
  std::string error;
};

/// Sweep options shared by every run.
struct SweepOptions {
  std::uint64_t base_seed = 1;
  /// Packets per configuration (paper: 4500; figure benches use less).
  int packet_count = 500;
  /// Upper bound on concurrent runs; 0 = the shared pool's full width.
  /// The executor never spawns threads: parallelism is capped by the
  /// process-wide pool, so asking for more than the hardware has changes
  /// nothing (and never changes results — only wall-clock).
  unsigned threads = 0;
  /// Configs dispatched to a worker per grab; 0 = auto (sized so each
  /// active worker gets ~16 grabs, capped at 64). Chunking amortises
  /// cursor contention; results are chunk-size invariant.
  std::size_t chunk = 0;
  /// Forwarded per-run simulation switches.
  bool analytic_ber = false;
  bool disable_temporal_shadowing = false;
  bool disable_interference = false;
  /// Collect per-layer counters into each SweepPoint.
  bool collect_counters = true;
  /// Capture each run's event trace into SweepPoint::events. Off by
  /// default: a trace is ~100 bytes/event and campaign sweeps are large.
  bool capture_traces = false;
  /// Ring capacity per run when capture_traces is set.
  std::size_t trace_capacity = trace::Tracer::kDefaultCapacity;
  /// Analytic fast-path (opt-in): before simulating, predict every config
  /// with the paper's Eq. 3/7/8 ModelSet and skip configs that are
  /// epsilon-dominated by another config on (energy, goodput, delay,
  /// loss). Skipped points carry the model prediction with
  /// `simulated == false`; simulated points are bit-identical to the same
  /// configs in an un-prescreened sweep (seeds stay keyed to the original
  /// index). Meant for optimisation workloads where only the frontier
  /// region earns simulated packets.
  bool analytic_prescreen = false;
  /// Dominance slack for the prescreen: a config is kept unless another
  /// config is better by more than this relative margin on *every*
  /// objective. 0 keeps exactly the predicted Pareto front; larger values
  /// keep a thicker near-front band (default 10%).
  double prescreen_slack = 0.10;
  /// Optional progress callback (invoked from worker threads with the
  /// number of completed runs; must be thread-safe). May be empty.
  std::function<void(std::size_t done, std::size_t total)> progress;
  /// Resume support: indices marked true are not run at all — their
  /// SweepPoint keeps only `config`, and the caller is expected to fill
  /// them from persisted state (see experiment/checkpoint.h). Empty = run
  /// everything; otherwise must parallel `configs`. Skipped indices keep
  /// their original-index seeds off the table entirely, so the simulated
  /// remainder stays bit-identical to an unskipped sweep.
  std::vector<bool> skip;
  /// Completion hook: invoked from worker threads immediately after
  /// points[index] is finalised (simulated, prescreened or failed — not
  /// for skipped/cancelled indices). Must be thread-safe. The campaign's
  /// checkpoint writer hangs off this.
  std::function<void(std::size_t index, const SweepPoint& point)> on_point;
  /// Cooperative cancellation, polled before each config starts: once it
  /// returns true, configs not yet started are left unrun (no on_point, no
  /// progress). Must be thread-safe. Models budgeted / interruptible runs.
  std::function<bool()> cancel;
};

/// Seed for the i-th configuration of a sweep (exposed so single runs can
/// be reproduced outside the sweep).
[[nodiscard]] std::uint64_t SweepSeed(std::uint64_t base_seed,
                                      std::size_t index) noexcept;

/// The effective chunk size a sweep of `total` configs uses (exposed for
/// the chunk-invariance tests and the perf bench).
[[nodiscard]] std::size_t SweepChunkSize(const SweepOptions& options,
                                         std::size_t total) noexcept;

/// The prescreen's keep/skip decisions for `configs` (true = simulate).
/// Exposed so tests and benches can inspect the screen without running it.
[[nodiscard]] std::vector<bool> PrescreenMask(
    const std::vector<core::StackConfig>& configs, double slack);

/// Runs every configuration; the result vector parallels `configs`.
[[nodiscard]] std::vector<SweepPoint> RunSweep(
    const std::vector<core::StackConfig>& configs, const SweepOptions& options);

/// Convenience: per-attempt logs are often needed by figure benches; this
/// variant returns the full simulation results instead of just metrics
/// (the analytic prescreen does not apply — raw logs require simulation).
[[nodiscard]] std::vector<node::SimulationResult> RunSweepRaw(
    const std::vector<core::StackConfig>& configs, const SweepOptions& options);

}  // namespace wsnlink::experiment
