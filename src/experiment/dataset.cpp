#include "experiment/dataset.h"

#include <fstream>
#include <stdexcept>

#include "util/args.h"
#include "util/csv.h"
#include "util/fault_injection.h"
#include "util/table.h"

namespace wsnlink::experiment {

namespace {

std::string Fmt(double v) { return util::FormatDouble(v, 6); }

double CellToDouble(const std::string& cell) {
  // util::ParseDouble is the one sanctioned numeric parser (wsnlint bans
  // raw parsing outside src/util); rewrap its error so callers keep
  // seeing the historical ParseSummaryRow runtime_error.
  try {
    return util::ParseDouble(cell, "summary cell");
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("ParseSummaryRow: ") + e.what());
  }
}

}  // namespace

std::vector<std::string> PacketCsvHeaders() {
  return {"packet_id",     "payload_bytes",  "arrived_us",
          "queue_depth",   "dropped_queue",  "service_start_us",
          "completed_us",  "acked",          "delivered",
          "tries",         "tx_energy_uj",   "first_delivered_us",
          "rssi_dbm",      "snr_db",         "lqi"};
}

void WritePacketLogCsv(const std::string& path, const link::PacketLog& log) {
  util::CsvWriter writer(path, PacketCsvHeaders());
  for (const auto& p : log.Packets()) {
    writer.WriteRow({
        std::to_string(p.id),
        std::to_string(p.payload_bytes),
        std::to_string(p.arrived_at),
        std::to_string(p.queue_depth_at_arrival),
        p.dropped_at_queue ? "1" : "0",
        std::to_string(p.service_start),
        std::to_string(p.completed_at),
        p.acked ? "1" : "0",
        p.delivered ? "1" : "0",
        std::to_string(p.tries),
        Fmt(p.tx_energy_uj),
        std::to_string(p.first_delivered_at),
        Fmt(p.rssi_dbm),
        Fmt(p.snr_db),
        std::to_string(p.lqi),
    });
  }
  writer.Close();
}

std::vector<std::string> AttemptCsvHeaders() {
  return {"packet_id", "attempt", "payload_bytes", "at_us",
          "rssi_dbm",  "snr_db",  "data_received", "acked"};
}

void WriteAttemptLogCsv(const std::string& path, const link::PacketLog& log) {
  util::CsvWriter writer(path, AttemptCsvHeaders());
  for (const auto& a : log.Attempts()) {
    writer.WriteRow({
        std::to_string(a.packet_id),
        std::to_string(a.attempt),
        std::to_string(a.payload_bytes),
        std::to_string(a.at),
        Fmt(a.rssi_dbm),
        Fmt(a.snr_db),
        a.data_received ? "1" : "0",
        a.acked ? "1" : "0",
    });
  }
  writer.Close();
}

std::vector<link::AttemptRecord> ReadAttemptLogCsv(const std::string& path) {
  const auto data = util::ReadCsv(path);
  const auto packet_id = data.NumericColumn("packet_id");
  const auto attempt = data.NumericColumn("attempt");
  const auto payload = data.NumericColumn("payload_bytes");
  const auto at = data.NumericColumn("at_us");
  const auto rssi = data.NumericColumn("rssi_dbm");
  const auto snr = data.NumericColumn("snr_db");
  const auto received = data.NumericColumn("data_received");
  const auto acked = data.NumericColumn("acked");

  std::vector<link::AttemptRecord> records(data.rows.size());
  for (std::size_t i = 0; i < data.rows.size(); ++i) {
    records[i].packet_id = static_cast<std::uint64_t>(packet_id[i]);
    records[i].attempt = static_cast<int>(attempt[i]);
    records[i].payload_bytes = static_cast<int>(payload[i]);
    records[i].at = static_cast<sim::Time>(at[i]);
    records[i].rssi_dbm = rssi[i];
    records[i].snr_db = snr[i];
    // wsnlint:allow(no-float-eq): 0/1 flag columns parse to exactly 0.0 or
    // 1.0, so != 0.0 is the precise decode, not a tolerance bug.
    records[i].data_received = received[i] != 0.0;
    records[i].acked = acked[i] != 0.0;
  }
  return records;
}

std::vector<std::string> SummaryCsvHeaders() {
  return {"distance_m",   "pa_level",      "max_tries",     "retry_delay_ms",
          "queue_cap",    "pkt_interval_ms", "payload_bytes", "mean_snr_db",
          "per",          "mean_tries_acked", "goodput_kbps", "energy_uj_per_bit",
          "mean_delay_ms", "mean_service_ms", "plr_queue",    "plr_radio",
          "plr_total",    "utilization",   "generated",     "delivered",
          "delay_p50_ms", "delay_p99_ms",  "delay_max_ms"};
}

std::string SerializeSummaryRow(const SweepPoint& point) {
  const auto& c = point.config;
  const auto& m = point.measured;
  const std::vector<std::string> cells = {
      Fmt(c.distance_m),
      std::to_string(c.pa_level),
      std::to_string(c.max_tries),
      Fmt(c.retry_delay_ms),
      std::to_string(c.queue_capacity),
      Fmt(c.pkt_interval_ms),
      std::to_string(c.payload_bytes),
      Fmt(point.mean_snr_db),
      Fmt(m.per),
      Fmt(m.mean_tries_acked),
      Fmt(m.goodput_kbps),
      Fmt(m.energy_uj_per_bit),
      Fmt(m.mean_delay_ms),
      Fmt(m.mean_service_ms),
      Fmt(m.plr_queue),
      Fmt(m.plr_radio),
      Fmt(m.plr_total),
      Fmt(m.utilization),
      std::to_string(m.generated),
      std::to_string(m.delivered_unique),
      Fmt(m.delay_p50_ms),
      Fmt(m.p99_delay_ms),
      Fmt(m.delay_max_ms),
  };
  std::string row;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) row += ',';
    row += util::EscapeCsvCell(cells[i]);
  }
  return row;
}

SweepPoint ParseSummaryRow(const std::string& row) {
  const auto cells = util::ParseCsvLine(row);
  if (cells.size() != SummaryCsvHeaders().size()) {
    throw std::runtime_error("ParseSummaryRow: expected " +
                             std::to_string(SummaryCsvHeaders().size()) +
                             " cells, got " + std::to_string(cells.size()));
  }
  SweepPoint p;
  p.config.distance_m = CellToDouble(cells[0]);
  p.config.pa_level = static_cast<int>(CellToDouble(cells[1]));
  p.config.max_tries = static_cast<int>(CellToDouble(cells[2]));
  p.config.retry_delay_ms = CellToDouble(cells[3]);
  p.config.queue_capacity = static_cast<int>(CellToDouble(cells[4]));
  p.config.pkt_interval_ms = CellToDouble(cells[5]);
  p.config.payload_bytes = static_cast<int>(CellToDouble(cells[6]));
  p.mean_snr_db = CellToDouble(cells[7]);
  p.measured.per = CellToDouble(cells[8]);
  p.measured.mean_tries_acked = CellToDouble(cells[9]);
  p.measured.goodput_kbps = CellToDouble(cells[10]);
  p.measured.energy_uj_per_bit = CellToDouble(cells[11]);
  p.measured.mean_delay_ms = CellToDouble(cells[12]);
  p.measured.mean_service_ms = CellToDouble(cells[13]);
  p.measured.plr_queue = CellToDouble(cells[14]);
  p.measured.plr_radio = CellToDouble(cells[15]);
  p.measured.plr_total = CellToDouble(cells[16]);
  p.measured.utilization = CellToDouble(cells[17]);
  p.measured.generated = static_cast<int>(CellToDouble(cells[18]));
  p.measured.delivered_unique =
      static_cast<std::uint64_t>(CellToDouble(cells[19]));
  p.measured.delay_p50_ms = CellToDouble(cells[20]);
  p.measured.p99_delay_ms = CellToDouble(cells[21]);
  p.measured.delay_max_ms = CellToDouble(cells[22]);
  return p;
}

void WriteSummaryCsvRows(const std::string& path,
                         const std::vector<std::string>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("WriteSummaryCsvRows: cannot open " + path);
  }
  const auto check = [&out, &path](const char* action) {
    auto& injector = util::FaultInjector::Global();
    if (injector.Armed() && injector.ShouldFail("csv.write")) {
      out.setstate(std::ios::failbit);
    }
    if (!out) {
      throw std::runtime_error(std::string("WriteSummaryCsvRows: ") + action +
                               " failed for " + path +
                               " (disk full or I/O error?)");
    }
  };
  const auto headers = SummaryCsvHeaders();
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i) out << ',';
    out << util::EscapeCsvCell(headers[i]);
  }
  out << '\n';
  check("write");
  for (const auto& row : rows) {
    out << row << '\n';
    check("write");
  }
  out.flush();
  check("flush");
}

void WriteSummaryCsv(const std::string& path,
                     const std::vector<SweepPoint>& points) {
  std::vector<std::string> rows;
  rows.reserve(points.size());
  for (const auto& point : points) rows.push_back(SerializeSummaryRow(point));
  WriteSummaryCsvRows(path, rows);
}

std::vector<SweepPoint> ReadSummaryCsv(const std::string& path) {
  const auto data = util::ReadCsv(path);
  const auto distance = data.NumericColumn("distance_m");
  const auto pa = data.NumericColumn("pa_level");
  const auto tries = data.NumericColumn("max_tries");
  const auto retry = data.NumericColumn("retry_delay_ms");
  const auto qcap = data.NumericColumn("queue_cap");
  const auto interval = data.NumericColumn("pkt_interval_ms");
  const auto payload = data.NumericColumn("payload_bytes");
  const auto snr = data.NumericColumn("mean_snr_db");
  const auto per = data.NumericColumn("per");
  const auto mean_tries = data.NumericColumn("mean_tries_acked");
  const auto goodput = data.NumericColumn("goodput_kbps");
  const auto energy = data.NumericColumn("energy_uj_per_bit");
  const auto delay = data.NumericColumn("mean_delay_ms");
  const auto service = data.NumericColumn("mean_service_ms");
  const auto plr_queue = data.NumericColumn("plr_queue");
  const auto plr_radio = data.NumericColumn("plr_radio");
  const auto plr_total = data.NumericColumn("plr_total");
  const auto util_col = data.NumericColumn("utilization");
  const auto generated = data.NumericColumn("generated");
  const auto delivered = data.NumericColumn("delivered");
  const auto delay_p50 = data.NumericColumn("delay_p50_ms");
  const auto delay_p99 = data.NumericColumn("delay_p99_ms");
  const auto delay_max = data.NumericColumn("delay_max_ms");

  std::vector<SweepPoint> points(data.rows.size());
  for (std::size_t i = 0; i < data.rows.size(); ++i) {
    auto& p = points[i];
    p.config.distance_m = distance[i];
    p.config.pa_level = static_cast<int>(pa[i]);
    p.config.max_tries = static_cast<int>(tries[i]);
    p.config.retry_delay_ms = retry[i];
    p.config.queue_capacity = static_cast<int>(qcap[i]);
    p.config.pkt_interval_ms = interval[i];
    p.config.payload_bytes = static_cast<int>(payload[i]);
    p.mean_snr_db = snr[i];
    p.measured.per = per[i];
    p.measured.mean_tries_acked = mean_tries[i];
    p.measured.goodput_kbps = goodput[i];
    p.measured.energy_uj_per_bit = energy[i];
    p.measured.mean_delay_ms = delay[i];
    p.measured.mean_service_ms = service[i];
    p.measured.plr_queue = plr_queue[i];
    p.measured.plr_radio = plr_radio[i];
    p.measured.plr_total = plr_total[i];
    p.measured.utilization = util_col[i];
    p.measured.generated = static_cast<int>(generated[i]);
    p.measured.delivered_unique = static_cast<std::uint64_t>(delivered[i]);
    p.measured.delay_p50_ms = delay_p50[i];
    p.measured.p99_delay_ms = delay_p99[i];
    p.measured.delay_max_ms = delay_max[i];
  }
  return points;
}

}  // namespace wsnlink::experiment
