#include "experiment/replication.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "experiment/sweep.h"
#include "util/stats.h"

namespace wsnlink::experiment {

namespace {

ReplicatedScalar Summarise(const std::vector<double>& values) {
  ReplicatedScalar s;
  util::RunningStats stats;
  for (const double v : values) stats.Add(v);
  s.mean = stats.Mean();
  s.stddev = stats.Count() > 1 ? stats.StdDev() : 0.0;
  s.ci95_half_width =
      1.96 * s.stddev / std::sqrt(static_cast<double>(stats.Count()));
  return s;
}

}  // namespace

ReplicatedMetrics MeasureReplicated(const node::SimulationOptions& options,
                                    int replicates) {
  if (replicates < 2) {
    throw std::invalid_argument("MeasureReplicated: need >= 2 replicates");
  }
  std::vector<double> goodput;
  std::vector<double> energy;
  std::vector<double> delay;
  std::vector<double> per;
  std::vector<double> plr_total;
  std::vector<double> plr_radio;
  std::vector<double> plr_queue;
  std::vector<double> utilization;

  for (int r = 0; r < replicates; ++r) {
    auto rep_options = options;
    rep_options.seed = SweepSeed(options.seed, static_cast<std::size_t>(r));
    const auto m = metrics::MeasureConfig(rep_options);
    goodput.push_back(m.goodput_kbps);
    energy.push_back(m.energy_uj_per_bit);
    delay.push_back(m.mean_delay_ms);
    per.push_back(m.per);
    plr_total.push_back(m.plr_total);
    plr_radio.push_back(m.plr_radio);
    plr_queue.push_back(m.plr_queue);
    utilization.push_back(m.utilization);
  }

  ReplicatedMetrics out;
  out.replicates = replicates;
  out.goodput_kbps = Summarise(goodput);
  out.energy_uj_per_bit = Summarise(energy);
  out.mean_delay_ms = Summarise(delay);
  out.per = Summarise(per);
  out.plr_total = Summarise(plr_total);
  out.plr_radio = Summarise(plr_radio);
  out.plr_queue = Summarise(plr_queue);
  out.utilization = Summarise(utilization);
  return out;
}

bool SignificantlyGreater(const ReplicatedScalar& a,
                          const ReplicatedScalar& b) {
  return a.mean - a.ci95_half_width > b.mean + b.ci95_half_width;
}

}  // namespace wsnlink::experiment
