#include "experiment/contention.h"

#include <cstdio>
#include <stdexcept>

#include "experiment/sweep.h"
#include "util/thread_pool.h"

namespace wsnlink::experiment {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::vector<ContentionPoint> RunContentionSweep(
    const ContentionOptions& options) {
  if (options.node_counts.empty()) {
    throw std::invalid_argument("RunContentionSweep: empty node-count ladder");
  }
  for (const int n : options.node_counts) {
    if (n < 1) {
      throw std::invalid_argument(
          "RunContentionSweep: node counts must be >= 1");
    }
  }

  std::vector<ContentionPoint> points(options.node_counts.size());
  // Chunk size 1: a rung is a whole network run, orders of magnitude
  // heavier than the dispatch cursor it amortises.
  util::ThreadPool::Shared().ParallelFor(
      points.size(), 1, options.threads, [&](std::size_t i) {
        node::SimulationOptions base;
        base.config = options.config;
        base.mac = options.mac;
        base.lpl_wakeup_interval_ms = options.lpl_wakeup_interval_ms;
        base.seed = SweepSeed(options.base_seed, i);
        base.packet_count = options.packet_count;
        base.disable_interference = options.disable_interference;
        base.interferer_duty_cycle = options.interferer_duty_cycle;

        node::NetworkOptions network;
        network.base = base;
        network.shared_medium = options.shared_medium;
        network.capture_margin_db = options.capture_margin_db;
        network.sim_threads = options.sim_threads;
        const int count = options.node_counts[i];
        network.nodes.reserve(static_cast<std::size_t>(count));
        for (int n = 0; n < count; ++n) {
          node::NodeSpec spec;
          spec.config = options.config;
          spec.config.distance_m =
              options.config.distance_m + n * options.node_spacing_m;
          network.nodes.push_back(spec);
        }

        points[i].nodes = count;
        points[i].seed = base.seed;
        points[i].result = node::RunNetworkSimulation(network);
      });
  return points;
}

std::string ContentionCsvHeader() {
  return "nodes,generated,delivered_unique,attempts,acked_packets,per,"
         "plr_total,queue_drops,cca_busy,medium_frames,medium_busy_hits,"
         "medium_collisions,medium_captures";
}

std::string SerializeContentionRow(const ContentionPoint& point) {
  const node::NetworkResult& r = point.result;
  std::string row;
  row += std::to_string(point.nodes);
  row += ',';
  row += std::to_string(r.generated);
  row += ',';
  row += std::to_string(r.delivered_unique);
  row += ',';
  row += std::to_string(r.attempts);
  row += ',';
  row += std::to_string(r.acked_packets);
  row += ',';
  row += FormatDouble(r.per);
  row += ',';
  row += FormatDouble(r.plr_total);
  row += ',';
  row += std::to_string(r.queue_drops);
  row += ',';
  row += std::to_string(r.cca_busy);
  row += ',';
  row += std::to_string(r.medium.frames);
  row += ',';
  row += std::to_string(r.medium.busy_hits);
  row += ',';
  row += std::to_string(r.medium.collisions);
  row += ',';
  row += std::to_string(r.medium.captures);
  return row;
}

}  // namespace wsnlink::experiment
