#include "experiment/sweep.h"

#include <atomic>
#include <memory>
#include <thread>

#include "util/rng.h"

namespace wsnlink::experiment {

std::uint64_t SweepSeed(std::uint64_t base_seed, std::size_t index) noexcept {
  std::uint64_t sm = base_seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  return util::SplitMix64(sm);
}

namespace {

node::SimulationOptions MakeOptions(const core::StackConfig& config,
                                    const SweepOptions& sweep,
                                    std::size_t index) {
  node::SimulationOptions options;
  options.config = config;
  options.seed = SweepSeed(sweep.base_seed, index);
  options.packet_count = sweep.packet_count;
  options.analytic_ber = sweep.analytic_ber;
  options.disable_temporal_shadowing = sweep.disable_temporal_shadowing;
  options.disable_interference = sweep.disable_interference;
  options.collect_counters = sweep.collect_counters;
  return options;
}

/// Runs `fn(i)` for every i in [0, total) over a worker pool.
void ParallelFor(std::size_t total, unsigned threads,
                 const std::function<void(std::size_t)>& fn) {
  unsigned workers = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers == 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&next, total, &fn] {
      for (std::size_t i = next.fetch_add(1); i < total;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace

std::vector<SweepPoint> RunSweep(const std::vector<core::StackConfig>& configs,
                                 const SweepOptions& options) {
  std::vector<SweepPoint> points(configs.size());
  std::atomic<std::size_t> done{0};
  ParallelFor(configs.size(), options.threads, [&](std::size_t i) {
    auto sim_options = MakeOptions(configs[i], options, i);
    // Per-run tracer: runs never share observability state, which is what
    // keeps captured traces identical across thread counts.
    std::unique_ptr<trace::Tracer> tracer;
    if (options.capture_traces) {
      tracer = std::make_unique<trace::Tracer>(options.trace_capacity);
      sim_options.tracer = tracer.get();
    }
    auto result = node::RunLinkSimulation(sim_options);
    points[i].config = configs[i];
    points[i].measured =
        metrics::ComputeMetrics(result, configs[i].pkt_interval_ms);
    points[i].mean_snr_db = result.mean_snr_db;
    points[i].counters = std::move(result.counters);
    if (tracer) points[i].events = tracer->Events();
    if (options.progress) {
      options.progress(done.fetch_add(1) + 1, configs.size());
    }
  });
  return points;
}

std::vector<node::SimulationResult> RunSweepRaw(
    const std::vector<core::StackConfig>& configs,
    const SweepOptions& options) {
  std::vector<node::SimulationResult> results(configs.size());
  std::atomic<std::size_t> done{0};
  ParallelFor(configs.size(), options.threads, [&](std::size_t i) {
    const auto sim_options = MakeOptions(configs[i], options, i);
    results[i] = node::RunLinkSimulation(sim_options);
    if (options.progress) {
      options.progress(done.fetch_add(1) + 1, configs.size());
    }
  });
  return results;
}

}  // namespace wsnlink::experiment
