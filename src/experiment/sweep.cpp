#include "experiment/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/models/model_set.h"
#include "core/opt/objectives.h"
#include "node/run_scratch.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wsnlink::experiment {

std::uint64_t SweepSeed(std::uint64_t base_seed, std::size_t index) noexcept {
  std::uint64_t sm = base_seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  return util::SplitMix64(sm);
}

std::size_t SweepChunkSize(const SweepOptions& options,
                           std::size_t total) noexcept {
  if (options.chunk != 0) return options.chunk;
  const unsigned pool_width = util::ThreadPool::Shared().WorkerCount() + 1;
  const unsigned width =
      options.threads == 0 ? pool_width : std::min(options.threads, pool_width);
  // ~16 grabs per active worker amortises the cursor; cap so progress
  // callbacks and stealing stay responsive on big sweeps.
  const std::size_t chunk = total / (static_cast<std::size_t>(width) * 16);
  return std::clamp<std::size_t>(chunk, 1, 64);
}

namespace {

node::SimulationOptions MakeOptions(const core::StackConfig& config,
                                    const SweepOptions& sweep,
                                    std::size_t index) {
  node::SimulationOptions options;
  options.config = config;
  options.seed = SweepSeed(sweep.base_seed, index);
  options.packet_count = sweep.packet_count;
  options.analytic_ber = sweep.analytic_ber;
  options.disable_temporal_shadowing = sweep.disable_temporal_shadowing;
  options.disable_interference = sweep.disable_interference;
  options.collect_counters = sweep.collect_counters;
  return options;
}

/// Per-worker recycled simulation state. Pool workers persist across
/// sweeps, so after the first few runs warm the capacities up, a worker's
/// runs stop allocating. (ParallelFor has the caller participate too, so
/// the main thread gets its own scratch the same way.)
node::LinkRunScratch& WorkerScratch() {
  // wsnstatic:allow(lp-isolation): thread_local scratch is per-worker by construction; no state crosses logical processes
  thread_local node::LinkRunScratch scratch;
  return scratch;
}

/// Runs `fn(i)` for every i in [0, total) over the shared pool.
void SweepParallelFor(std::size_t total, const SweepOptions& options,
                      const std::function<void(std::size_t)>& fn) {
  util::ThreadPool::Shared().ParallelFor(total, SweepChunkSize(options, total),
                                         options.threads, fn);
}

/// Fills a SweepPoint from a model prediction (prescreened config).
void FillFromPrediction(SweepPoint& point, const core::StackConfig& config,
                        const core::models::MetricPrediction& prediction) {
  point.config = config;
  point.simulated = false;
  point.mean_snr_db = prediction.snr_db;
  point.measured.generated = 0;
  point.measured.per = prediction.per;
  point.measured.mean_tries_all = prediction.mean_tries;
  point.measured.mean_tries_acked = prediction.mean_tries;
  point.measured.mean_service_ms = prediction.service_time_ms;
  point.measured.utilization = prediction.utilization;
  point.measured.goodput_kbps = prediction.max_goodput_kbps;
  point.measured.energy_uj_per_bit = prediction.energy_uj_per_bit;
  point.measured.mean_delay_ms = prediction.total_delay_ms;
  point.measured.plr_radio = prediction.plr_radio;
  point.measured.plr_queue = prediction.plr_queue;
  point.measured.plr_total = prediction.plr_total;
  point.measured.mean_snr_db = prediction.snr_db;
}

}  // namespace

std::vector<bool> PrescreenMask(const std::vector<core::StackConfig>& configs,
                                double slack) {
  using core::opt::Metric;
  const core::models::ModelSet models;
  const Metric kObjectives[] = {Metric::kEnergy, Metric::kGoodput,
                                Metric::kDelay, Metric::kLoss};

  struct Costs {
    double v[4];
  };
  std::vector<core::models::MetricPrediction> predictions(configs.size());
  models.PredictBatch(configs, predictions);
  std::vector<Costs> costs(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (std::size_t m = 0; m < 4; ++m) {
      costs[i].v[m] = core::opt::MetricCost(predictions[i], kObjectives[m]);
    }
  }

  // `a` epsilon-dominates `b` when a is better than b by more than `slack`
  // (relative, against the cost magnitude) on every objective. The strict
  // "every objective" form keeps ties and near-ties simulated.
  const auto dominates = [slack](const Costs& a, const Costs& b) {
    for (std::size_t m = 0; m < 4; ++m) {
      const double margin = slack * std::max(std::abs(b.v[m]), 1e-9);
      if (a.v[m] >= b.v[m] - margin) return false;
    }
    return true;
  };

  // Incremental non-dominated filter: compare each config against the
  // running front only (the front stays small relative to the sweep), then
  // prune front members the newcomer dominates.
  std::vector<bool> keep(configs.size(), true);
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    bool dominated = false;
    for (const std::size_t f : front) {
      if (dominates(costs[f], costs[i])) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      keep[i] = false;
      continue;
    }
    std::erase_if(front, [&](std::size_t f) {
      if (dominates(costs[i], costs[f])) {
        keep[f] = false;
        return true;
      }
      return false;
    });
    front.push_back(i);
  }
  return keep;
}

std::vector<SweepPoint> RunSweep(const std::vector<core::StackConfig>& configs,
                                 const SweepOptions& options) {
  std::vector<SweepPoint> points(configs.size());
  if (!options.skip.empty() && options.skip.size() != configs.size()) {
    throw std::invalid_argument("RunSweep: skip mask size != config count");
  }

  std::vector<bool> keep;
  if (options.analytic_prescreen) {
    keep = PrescreenMask(configs, options.prescreen_slack);
    const core::models::ModelSet models;
    std::vector<core::models::MetricPrediction> predictions(configs.size());
    models.PredictBatch(configs, predictions);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (!keep[i]) {
        FillFromPrediction(points[i], configs[i], predictions[i]);
      }
    }
  }

  std::atomic<std::size_t> done{0};
  SweepParallelFor(configs.size(), options, [&](std::size_t i) {
    if (!options.skip.empty() && options.skip[i]) {
      // Resumed-from-checkpoint index: the caller fills the point; the
      // sweep only keeps the slot aligned and the progress count honest.
      points[i].config = configs[i];
      if (options.progress) {
        options.progress(done.fetch_add(1) + 1, configs.size());
      }
      return;
    }
    if (options.cancel && options.cancel()) return;
    if (!keep.empty() && !keep[i]) {
      if (options.on_point) options.on_point(i, points[i]);
      if (options.progress) {
        options.progress(done.fetch_add(1) + 1, configs.size());
      }
      return;
    }
    // Graceful degradation: a worker that throws (simulation bug, injected
    // fault, bad config) marks *this* point failed instead of taking the
    // whole campaign down with it.
    try {
      if (util::FaultInjector::Global().Armed()) {
        util::FaultInjector::Global().MaybeThrow("sweep.worker");
      }
      auto sim_options = MakeOptions(configs[i], options, i);
      if (options.capture_traces) {
        // Trace capture allocates by design (the event log escapes), so it
        // takes the plain path. Per-run tracer: runs never share
        // observability state, which is what keeps captured traces
        // identical across thread counts.
        const auto tracer =
            std::make_unique<trace::Tracer>(options.trace_capacity);
        sim_options.tracer = tracer.get();
        auto result = node::RunLinkSimulation(sim_options);
        points[i].config = configs[i];
        points[i].measured =
            metrics::ComputeMetrics(result, configs[i].pkt_interval_ms);
        points[i].mean_snr_db = result.mean_snr_db;
        points[i].counters = std::move(result.counters);
        points[i].events = tracer->Events();
      } else {
        // Steady-state hot path: every growable resource comes from the
        // worker's recycled scratch; results are bit-identical to the
        // plain path.
        node::LinkRunScratch& scratch = WorkerScratch();
        auto result = node::RunLinkSimulation(sim_options, scratch);
        points[i].config = configs[i];
        points[i].measured = metrics::ComputeMetrics(
            result, configs[i].pkt_interval_ms, scratch.delay_buf);
        points[i].mean_snr_db = result.mean_snr_db;
        points[i].counters = std::move(result.counters);
        // Hand the log's heap blocks back for the next run.
        result.log.ExtractStorage(scratch.packet_buf, scratch.attempt_buf);
      }
    } catch (const std::exception& e) {
      points[i] = SweepPoint{};
      points[i].config = configs[i];
      points[i].failed = true;
      points[i].error = e.what();
    } catch (...) {
      points[i] = SweepPoint{};
      points[i].config = configs[i];
      points[i].failed = true;
      points[i].error = "unknown error";
    }
    if (options.on_point) options.on_point(i, points[i]);
    if (options.progress) {
      options.progress(done.fetch_add(1) + 1, configs.size());
    }
  });
  return points;
}

std::vector<node::SimulationResult> RunSweepRaw(
    const std::vector<core::StackConfig>& configs,
    const SweepOptions& options) {
  std::vector<node::SimulationResult> results(configs.size());
  std::atomic<std::size_t> done{0};
  SweepParallelFor(configs.size(), options, [&](std::size_t i) {
    const auto sim_options = MakeOptions(configs[i], options, i);
    results[i] = node::RunLinkSimulation(sim_options);
    if (options.progress) {
      options.progress(done.fetch_add(1) + 1, configs.size());
    }
  });
  return results;
}

}  // namespace wsnlink::experiment
