// Campaign analysis: dataset -> model validation and zone statistics.
//
// Bridges the experiment layer (SweepPoint datasets) to the core model
// validation (core/models/validation.h) and provides the per-zone
// aggregations the paper's narrative is built on.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/models/validation.h"
#include "experiment/sweep.h"

namespace wsnlink::experiment {

/// Converts sweep results into model-validation samples.
[[nodiscard]] std::vector<core::models::ValidationSample> ToValidationSamples(
    std::span<const SweepPoint> points);

/// Per-joint-effect-zone aggregate of one campaign (the Fig. 6(d) /
/// Sec. III-B classification applied to a whole dataset).
struct ZoneSummary {
  std::string zone;
  std::size_t configs = 0;
  double mean_per = 0.0;
  double mean_goodput_kbps = 0.0;
  double mean_energy_uj_per_bit = 0.0;  ///< over configs that delivered
  double mean_plr_total = 0.0;
};

/// Buckets sweep points by the PER joint-effect zone of their mean SNR
/// (below-grey links are reported as a fourth "dead" zone).
[[nodiscard]] std::vector<ZoneSummary> SummariseByZone(
    std::span<const SweepPoint> points);

/// Renders zone summaries as an aligned table.
[[nodiscard]] std::string ZoneTable(std::span<const ZoneSummary> zones);

}  // namespace wsnlink::experiment
