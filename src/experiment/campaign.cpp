#include "experiment/campaign.h"

#include <stdexcept>

#include "experiment/dataset.h"

namespace wsnlink::experiment {

CampaignResult RunCampaign(const CampaignOptions& options) {
  if (options.stride < 1) {
    throw std::invalid_argument("RunCampaign: stride must be >= 1");
  }
  options.space.Validate();

  std::vector<core::StackConfig> configs;
  const std::size_t size = options.space.Size();
  configs.reserve(size / options.stride + 1);
  for (std::size_t i = 0; i < size; i += options.stride) {
    configs.push_back(options.space.At(i));
  }

  SweepOptions sweep;
  sweep.base_seed = options.base_seed;
  sweep.packet_count = options.packet_count;
  sweep.threads = options.threads;
  sweep.progress = options.progress;

  CampaignResult result;
  result.points = RunSweep(configs, sweep);
  result.configurations = result.points.size();
  result.total_packets = static_cast<std::uint64_t>(options.packet_count) *
                         result.configurations;

  if (!options.summary_csv_path.empty()) {
    WriteSummaryCsv(options.summary_csv_path, result.points);
  }
  return result;
}

}  // namespace wsnlink::experiment
