#include "experiment/campaign.h"

#include <atomic>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "experiment/checkpoint.h"
#include "experiment/dataset.h"
#include "util/csv.h"

namespace wsnlink::experiment {

namespace {

/// Mutable bookkeeping for one configuration slot: what the checkpoint
/// will record and what the final CSV will emit.
struct RowSlot {
  bool done = false;
  bool failed = false;
  std::string error;
  std::string csv_row;
};

}  // namespace

CampaignResult RunCampaign(const CampaignOptions& options) {
  if (options.stride < 1) {
    throw std::invalid_argument("RunCampaign: stride must be >= 1");
  }
  if (options.checkpoint_every < 1) {
    throw std::invalid_argument("RunCampaign: checkpoint_every must be >= 1");
  }
  options.space.Validate();

  std::vector<core::StackConfig> configs;
  const std::size_t size = options.space.Size();
  configs.reserve(size / options.stride + 1);
  for (std::size_t i = 0; i < size; i += options.stride) {
    configs.push_back(options.space.At(i));
  }

  CheckpointMeta meta;
  meta.base_seed = options.base_seed;
  meta.packet_count = options.packet_count;
  meta.stride = options.stride;
  meta.space_size = size;
  meta.config_count = configs.size();

  // Restore completed work from a previous (interrupted) run.
  std::vector<RowSlot> slots(configs.size());
  std::vector<bool> skip;
  std::size_t restored = 0;
  if (options.resume && !options.checkpoint_path.empty() &&
      std::filesystem::exists(options.checkpoint_path)) {
    const Checkpoint loaded = ReadCheckpoint(options.checkpoint_path);
    if (!(loaded.meta == meta)) {
      throw CheckpointError(
          "checkpoint: " + options.checkpoint_path +
          " was taken under a different campaign contract (seed " +
          std::to_string(loaded.meta.base_seed) + "/" +
          std::to_string(meta.base_seed) + ", packets " +
          std::to_string(loaded.meta.packet_count) + "/" +
          std::to_string(meta.packet_count) + ", stride " +
          std::to_string(loaded.meta.stride) + "/" +
          std::to_string(meta.stride) + ", configs " +
          std::to_string(loaded.meta.config_count) + "/" +
          std::to_string(meta.config_count) +
          ") — resumed rows would not be reproducible");
    }
    skip.assign(configs.size(), false);
    for (const auto& row : loaded.rows) {
      RowSlot& slot = slots[row.index];
      if (!slot.done) ++restored;
      slot.done = true;
      slot.failed = row.failed;
      slot.error = row.error;
      slot.csv_row = row.csv_row;
      skip[row.index] = true;
    }
  }

  // Checkpoint writer shared by the worker-side completion hook. All of
  // the mutable state below is guarded by `mutex`; the sweep guarantees
  // on_point fires at most once per index.
  std::mutex mutex;
  std::size_t completed_new = 0;
  std::size_t since_checkpoint = 0;
  std::string checkpoint_error;
  std::atomic<bool> cancelled{false};

  const auto write_checkpoint_locked = [&]() {
    Checkpoint checkpoint;
    checkpoint.meta = meta;
    checkpoint.rows.reserve(restored + completed_new);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].done) continue;
      CheckpointRow row;
      row.index = i;
      row.failed = slots[i].failed;
      row.error = slots[i].error;
      row.csv_row = slots[i].csv_row;
      checkpoint.rows.push_back(std::move(row));
    }
    try {
      WriteCheckpoint(options.checkpoint_path, checkpoint);
    } catch (const std::exception& e) {
      // Graceful degradation: the campaign outlives a failed checkpoint
      // write (the previous checkpoint file is still intact thanks to the
      // tmp+rename protocol); record the failure and retry next interval.
      if (checkpoint_error.empty()) checkpoint_error = e.what();
    }
  };

  SweepOptions sweep;
  sweep.base_seed = options.base_seed;
  sweep.packet_count = options.packet_count;
  sweep.threads = options.threads;
  sweep.chunk = options.chunk;
  sweep.collect_counters = options.collect_counters;
  sweep.capture_traces = options.capture_traces;
  sweep.progress = options.progress;
  sweep.skip = skip;
  if (options.max_configs > 0) {
    sweep.cancel = [&cancelled]() {
      return cancelled.load(std::memory_order_relaxed);
    };
  }
  sweep.on_point = [&](std::size_t index, const SweepPoint& point) {
    std::lock_guard<std::mutex> lock(mutex);
    RowSlot& slot = slots[index];
    slot.done = true;
    slot.failed = point.failed;
    slot.error = point.error;
    slot.csv_row = SerializeSummaryRow(point);
    ++completed_new;
    if (options.max_configs > 0 && completed_new >= options.max_configs) {
      cancelled.store(true, std::memory_order_relaxed);
    }
    if (!options.checkpoint_path.empty() &&
        ++since_checkpoint >= options.checkpoint_every) {
      since_checkpoint = 0;
      write_checkpoint_locked();
    }
  };

  CampaignResult result;
  result.points = RunSweep(configs, sweep);

  // Fill resumed slots back into the in-memory points (verbatim rows stay
  // authoritative for the CSV; the parsed form serves in-process callers).
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (skip.empty() || !skip[i]) continue;
    SweepPoint point = ParseSummaryRow(slots[i].csv_row);
    point.failed = slots[i].failed;
    point.error = slots[i].error;
    result.points[i] = std::move(point);
  }

  std::size_t done = 0;
  std::size_t failed = 0;
  for (const auto& slot : slots) {
    if (slot.done) ++done;
    if (slot.done && slot.failed) ++failed;
  }

  result.configurations = result.points.size();
  result.configs_failed = failed;
  result.configs_resumed = restored;
  result.complete = done == configs.size();
  result.total_packets =
      static_cast<std::uint64_t>(options.packet_count) * done;

  // Final checkpoint: an interrupted run persists the tail that the last
  // interval missed; a complete run records everything (so re-running with
  // --resume just re-emits the CSV).
  if (!options.checkpoint_path.empty()) {
    std::lock_guard<std::mutex> lock(mutex);
    write_checkpoint_locked();
  }
  result.checkpoint_write_error = checkpoint_error;

  if (options.collect_counters) {
    std::vector<std::vector<trace::CounterSample>> snapshots;
    snapshots.reserve(result.points.size());
    for (const auto& point : result.points) snapshots.push_back(point.counters);
    result.counters = trace::MergeCounters(snapshots);
    trace::AddSample(result.counters, "campaign.configs_failed",
                     static_cast<std::uint64_t>(failed));
  }

  if (result.complete && !options.summary_csv_path.empty()) {
    std::vector<std::string> rows;
    rows.reserve(slots.size());
    for (const auto& slot : slots) rows.push_back(slot.csv_row);
    WriteSummaryCsvRows(options.summary_csv_path, rows);

    if (failed > 0) {
      util::CsvWriter errors(options.summary_csv_path + ".errors.csv",
                             {"config_index", "error"});
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].failed) {
          errors.WriteRow({std::to_string(i), slots[i].error});
        }
      }
      errors.Close();
    }
  }
  return result;
}

}  // namespace wsnlink::experiment
