#include "experiment/campaign.h"

#include <stdexcept>

#include "experiment/dataset.h"

namespace wsnlink::experiment {

CampaignResult RunCampaign(const CampaignOptions& options) {
  if (options.stride < 1) {
    throw std::invalid_argument("RunCampaign: stride must be >= 1");
  }
  options.space.Validate();

  std::vector<core::StackConfig> configs;
  const std::size_t size = options.space.Size();
  configs.reserve(size / options.stride + 1);
  for (std::size_t i = 0; i < size; i += options.stride) {
    configs.push_back(options.space.At(i));
  }

  SweepOptions sweep;
  sweep.base_seed = options.base_seed;
  sweep.packet_count = options.packet_count;
  sweep.threads = options.threads;
  sweep.chunk = options.chunk;
  sweep.collect_counters = options.collect_counters;
  sweep.capture_traces = options.capture_traces;
  sweep.progress = options.progress;

  CampaignResult result;
  result.points = RunSweep(configs, sweep);
  result.configurations = result.points.size();
  result.total_packets = static_cast<std::uint64_t>(options.packet_count) *
                         result.configurations;

  if (options.collect_counters) {
    std::vector<std::vector<trace::CounterSample>> snapshots;
    snapshots.reserve(result.points.size());
    for (const auto& point : result.points) snapshots.push_back(point.counters);
    result.counters = trace::MergeCounters(snapshots);
  }

  if (!options.summary_csv_path.empty()) {
    WriteSummaryCsv(options.summary_csv_path, result.points);
  }
  return result;
}

}  // namespace wsnlink::experiment
