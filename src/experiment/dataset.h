// Dataset export — the synthetic counterpart of the paper's public dataset.
//
// Two CSV schemas:
//  * per-packet:  one row per application packet with the same metadata the
//    motes logged (timestamps, tries, queue depth, RSSI/LQI, outcome);
//  * per-config:  one summary row per configuration with the measured
//    metric vector, which is what the analysis/fitting stages consume.
#pragma once

#include <string>
#include <vector>

#include "experiment/sweep.h"
#include "link/packet_log.h"

namespace wsnlink::experiment {

/// Column headers of the per-packet schema.
[[nodiscard]] std::vector<std::string> PacketCsvHeaders();

/// Writes one run's packet log (throws std::runtime_error on I/O failure).
void WritePacketLogCsv(const std::string& path, const link::PacketLog& log);

/// Column headers of the per-attempt schema (the trace the what-if
/// analysis in metrics/what_if.h consumes offline).
[[nodiscard]] std::vector<std::string> AttemptCsvHeaders();

/// Writes one run's attempt log.
void WriteAttemptLogCsv(const std::string& path, const link::PacketLog& log);

/// Reads an attempt log back (inverse of WriteAttemptLogCsv).
[[nodiscard]] std::vector<link::AttemptRecord> ReadAttemptLogCsv(
    const std::string& path);

/// Column headers of the per-config summary schema.
[[nodiscard]] std::vector<std::string> SummaryCsvHeaders();

/// One summary row, serialized exactly as WriteSummaryCsv emits it (escaped
/// cells joined by ',', no trailing newline). The campaign checkpoint
/// stores these strings verbatim, which is what makes a resumed run's CSV
/// byte-identical to an uninterrupted one: no parse/re-format round trip.
[[nodiscard]] std::string SerializeSummaryRow(const SweepPoint& point);

/// Inverse of SerializeSummaryRow (columns are positional per
/// SummaryCsvHeaders; only the summary columns are reconstructed). Throws
/// std::runtime_error on a malformed row.
[[nodiscard]] SweepPoint ParseSummaryRow(const std::string& row);

/// Writes a summary CSV from pre-serialized rows (the checkpoint/resume
/// path). WriteSummaryCsv delegates here, so both paths emit identical
/// bytes for identical points.
void WriteSummaryCsvRows(const std::string& path,
                         const std::vector<std::string>& rows);

/// Writes a sweep's summary rows.
void WriteSummaryCsv(const std::string& path,
                     const std::vector<SweepPoint>& points);

/// Reads a summary CSV back into sweep points (inverse of WriteSummaryCsv;
/// only the columns the fitters need are reconstructed).
[[nodiscard]] std::vector<SweepPoint> ReadSummaryCsv(const std::string& path);

}  // namespace wsnlink::experiment
