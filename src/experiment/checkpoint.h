// Campaign checkpoint files: crash-safe persistence of completed work.
//
// The paper's dataset took six months of wall clock to measure; our
// synthetic equivalent is a long RunCampaign sweep that, before this
// subsystem, lost every completed configuration on a crash, OOM-kill or
// power cut. A checkpoint records which configuration indices have
// completed and their exact serialized summary rows, plus the seed
// contract they were produced under, so a resumed campaign (a) re-runs
// only the remainder and (b) emits a summary CSV byte-identical to an
// uninterrupted run — rows are stored as the verbatim strings the CSV
// writer would emit, never re-formatted.
//
// File format (version 1, line-based text, LF endings):
//
//   wsnlink-checkpoint 1
//   base_seed <u64>
//   packet_count <int>
//   stride <u64>
//   space_size <u64>
//   config_count <u64>
//   rows <N>
//   row <index> <ok|failed>\t<error>\t<summary-csv-row>     (N lines)
//   end <fnv1a64-hex of every preceding byte>
//
// Writes are atomic (tmp file + rename), so a crash mid-write leaves the
// previous checkpoint intact; the trailing checksum line turns truncation
// and bit rot into loud CheckpointError rejections instead of silently
// resumed garbage.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace wsnlink::experiment {

/// Any checkpoint I/O or validation failure: missing/unreadable file, bad
/// magic, unsupported version, truncation, checksum mismatch, malformed
/// record, or (at resume) a seed-contract mismatch.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

inline constexpr int kCheckpointFormatVersion = 1;

/// The reproducibility contract a checkpoint was taken under. Resume
/// refuses to mix checkpoints across contracts: completed rows are only
/// reusable when every seed-relevant knob matches (PR 2's seed-injectivity
/// guarantee keys each config's RNG stream to (base_seed, index)).
struct CheckpointMeta {
  std::uint64_t base_seed = 0;
  int packet_count = 0;
  std::uint64_t stride = 1;
  /// Size of the unsampled configuration space.
  std::uint64_t space_size = 0;
  /// Configurations in the (strided) campaign; row indices are < this.
  std::uint64_t config_count = 0;

  friend bool operator==(const CheckpointMeta&, const CheckpointMeta&) =
      default;
};

/// One completed configuration.
struct CheckpointRow {
  std::uint64_t index = 0;
  bool failed = false;
  /// Structured error message when failed (sanitised to one line).
  std::string error;
  /// The verbatim summary-CSV row (see dataset.h SerializeSummaryRow).
  std::string csv_row;
};

struct Checkpoint {
  CheckpointMeta meta;
  std::vector<CheckpointRow> rows;
};

/// Atomically (tmp + rename) writes `checkpoint`. Throws CheckpointError
/// on any I/O failure; the previous file at `path`, if any, is untouched
/// in that case.
void WriteCheckpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads and fully validates a checkpoint. Throws CheckpointError with a
/// clear message on any corruption; never returns partial data.
[[nodiscard]] Checkpoint ReadCheckpoint(const std::string& path);

/// FNV-1a 64-bit over `bytes` (exposed for the corruption tests; also the
/// content-address hash of the serve result cache).
[[nodiscard]] std::uint64_t CheckpointChecksum(std::string_view bytes) noexcept;

/// Atomically (tmp + rename) publishes `body` followed by a trailing
/// "end <fnv1a64-hex>\n" checksum line at `path` — the write half of the
/// checkpoint line format, shared by campaign checkpoints and the serve
/// result cache (serve/result_cache.h). Instrumented at the
/// "checkpoint.write" fault-injection site; on any failure (real or
/// injected) the tmp file is removed, any previous file at `path` is left
/// intact, and CheckpointError is thrown.
void WriteChecksummedFile(const std::string& path, std::string_view body);

/// Verifies and strips the trailing "end <checksum>" line of a file's
/// contents: returns the checksummed body on success, throws
/// CheckpointError naming `path` on truncation, append damage, a malformed
/// checksum line or a checksum mismatch. The read half of the shared
/// format.
[[nodiscard]] std::string_view VerifyChecksummedBody(std::string_view contents,
                                                     const std::string& path);

}  // namespace wsnlink::experiment
