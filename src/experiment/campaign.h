// The full measurement campaign (Sec. II-C), regenerated synthetically.
//
// The paper iterated, for each of the distances, all 8064 combinations of
// the remaining six parameters with 4500 packets each — ~48k configurations
// and >200M packets over six months. The campaign driver reproduces that
// sweep (optionally subsampled / with fewer packets per config) and emits
// the per-configuration summary dataset.
#pragma once

#include <cstdint>
#include <string>

#include "core/opt/config_space.h"
#include "experiment/sweep.h"

namespace wsnlink::experiment {

/// Campaign scaling knobs.
struct CampaignOptions {
  /// The parameter space to sweep (default: the Table I reconstruction).
  core::opt::ConfigSpace space = core::opt::ConfigSpace::PaperTableI();
  /// Packets per configuration (paper fidelity: 4500).
  int packet_count = 300;
  /// Keep every k-th configuration (1 = full campaign). Deterministic
  /// subsampling for quick passes. Must be >= 1.
  std::size_t stride = 1;
  std::uint64_t base_seed = 2013;  // the paper's measurement year
  /// Parallelism cap and chunking, forwarded to the sweep executor (see
  /// SweepOptions::threads / SweepOptions::chunk; the campaign runs on the
  /// shared pool, never on its own threads).
  unsigned threads = 0;
  std::size_t chunk = 0;
  /// If non-empty, the per-config summary CSV is written here.
  std::string summary_csv_path;
  /// Collect per-layer counters per point and roll them up into
  /// CampaignResult::counters.
  bool collect_counters = true;
  /// Capture each run's event trace into its SweepPoint (expensive at
  /// campaign scale; meant for debugging small subsampled campaigns).
  bool capture_traces = false;
  /// Progress callback forwarded to the sweep (may be empty).
  std::function<void(std::size_t, std::size_t)> progress;

  // -- Crash safety (docs/ROBUSTNESS.md) ---------------------------------
  /// When non-empty, a checkpoint recording every completed configuration
  /// (its verbatim summary-CSV row and failure status) is rewritten here —
  /// atomically, tmp + rename — every `checkpoint_every` completions and
  /// once more when the run ends.
  std::string checkpoint_path;
  /// Completed configurations between checkpoint writes (>= 1).
  std::size_t checkpoint_every = 64;
  /// Resume from `checkpoint_path` if the file exists: checkpointed
  /// configurations are restored verbatim (never re-simulated, never
  /// re-formatted) and only the remainder runs. The checkpoint's seed
  /// contract (base_seed, packet_count, stride, space size) must match
  /// this options struct or RunCampaign throws CheckpointError. With no
  /// checkpoint file present, resume behaves like a fresh run.
  bool resume = false;
  /// Stop cleanly after ~N newly completed configurations (0 = no cap):
  /// the checkpoint is written and the partial result returned with
  /// `complete == false` and no summary CSV. Models budgeted or
  /// interruptible runs; "~" because in-flight workers finish their
  /// current config. Requires checkpoint_path to be useful.
  std::size_t max_configs = 0;
};

/// Campaign outcome.
struct CampaignResult {
  std::vector<SweepPoint> points;
  /// Configurations swept (== points.size()).
  std::size_t configurations = 0;
  /// Total packets generated across the sweep.
  std::uint64_t total_packets = 0;
  /// Campaign-wide counter roll-up: the per-point snapshots summed by
  /// name (empty when collect_counters is false). Always carries a
  /// "campaign.configs_failed" sample; restored (resumed) points
  /// contribute no per-layer counters — the roll-up covers this process's
  /// simulated work.
  std::vector<trace::CounterSample> counters;
  /// Configurations whose worker threw (their points carry failed/error;
  /// the summary CSV gets a zeroed metrics row and <summary>.errors.csv
  /// the structured error records).
  std::size_t configs_failed = 0;
  /// Configurations restored from the checkpoint instead of simulated.
  std::size_t configs_resumed = 0;
  /// False when the run stopped early (max_configs budget): no summary
  /// CSV was written; resume from the checkpoint to continue.
  bool complete = true;
  /// First checkpoint-write failure, if any (the campaign degrades
  /// gracefully: a failed write never aborts the run — the previous
  /// checkpoint stays valid and the next interval retries).
  std::string checkpoint_write_error;
};

/// Runs the campaign. Deterministic in options.
[[nodiscard]] CampaignResult RunCampaign(const CampaignOptions& options);

}  // namespace wsnlink::experiment
