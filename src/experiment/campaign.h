// The full measurement campaign (Sec. II-C), regenerated synthetically.
//
// The paper iterated, for each of the distances, all 8064 combinations of
// the remaining six parameters with 4500 packets each — ~48k configurations
// and >200M packets over six months. The campaign driver reproduces that
// sweep (optionally subsampled / with fewer packets per config) and emits
// the per-configuration summary dataset.
#pragma once

#include <cstdint>
#include <string>

#include "core/opt/config_space.h"
#include "experiment/sweep.h"

namespace wsnlink::experiment {

/// Campaign scaling knobs.
struct CampaignOptions {
  /// The parameter space to sweep (default: the Table I reconstruction).
  core::opt::ConfigSpace space = core::opt::ConfigSpace::PaperTableI();
  /// Packets per configuration (paper fidelity: 4500).
  int packet_count = 300;
  /// Keep every k-th configuration (1 = full campaign). Deterministic
  /// subsampling for quick passes. Must be >= 1.
  std::size_t stride = 1;
  std::uint64_t base_seed = 2013;  // the paper's measurement year
  /// Parallelism cap and chunking, forwarded to the sweep executor (see
  /// SweepOptions::threads / SweepOptions::chunk; the campaign runs on the
  /// shared pool, never on its own threads).
  unsigned threads = 0;
  std::size_t chunk = 0;
  /// If non-empty, the per-config summary CSV is written here.
  std::string summary_csv_path;
  /// Collect per-layer counters per point and roll them up into
  /// CampaignResult::counters.
  bool collect_counters = true;
  /// Capture each run's event trace into its SweepPoint (expensive at
  /// campaign scale; meant for debugging small subsampled campaigns).
  bool capture_traces = false;
  /// Progress callback forwarded to the sweep (may be empty).
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Campaign outcome.
struct CampaignResult {
  std::vector<SweepPoint> points;
  /// Configurations swept (== points.size()).
  std::size_t configurations = 0;
  /// Total packets generated across the sweep.
  std::uint64_t total_packets = 0;
  /// Campaign-wide counter roll-up: the per-point snapshots summed by
  /// name (empty when collect_counters is false).
  std::vector<trace::CounterSample> counters;
};

/// Runs the campaign. Deterministic in options.
[[nodiscard]] CampaignResult RunCampaign(const CampaignOptions& options);

}  // namespace wsnlink::experiment
