#include "experiment/checkpoint.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/fault_injection.h"

namespace wsnlink::experiment {

namespace {

constexpr std::string_view kMagic = "wsnlink-checkpoint";

/// One-line form of an error message: the checkpoint format is line-based
/// and tab-delimited, so control characters become spaces.
std::string SanitizeError(std::string_view error) {
  std::string out(error);
  for (char& ch : out) {
    if (ch == '\t' || ch == '\n' || ch == '\r') ch = ' ';
  }
  return out;
}

std::uint64_t ParseU64(std::string_view text, const char* what) {
  std::uint64_t v{};
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                         v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw CheckpointError(std::string("checkpoint: bad ") + what + " '" +
                          std::string(text) + "'");
  }
  return v;
}

/// Expects "<key> <value>" and returns the value.
std::string_view ExpectKeyLine(std::string_view line, std::string_view key) {
  if (line.substr(0, key.size()) != key || line.size() <= key.size() ||
      line[key.size()] != ' ') {
    throw CheckpointError("checkpoint: expected '" + std::string(key) +
                          " <value>' line, got '" + std::string(line) + "'");
  }
  return line.substr(key.size() + 1);
}

}  // namespace

std::uint64_t CheckpointChecksum(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a 64 offset basis
  for (const unsigned char ch : bytes) {
    hash ^= ch;
    hash *= 0x100000001B3ULL;  // FNV prime
  }
  return hash;
}

void WriteChecksummedFile(const std::string& path, std::string_view body) {
  char checksum[17];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(CheckpointChecksum(body)));

  // Atomic publish: a crash (or injected failure) while writing the tmp
  // file leaves any previous file at `path` intact.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError("checkpoint: cannot open " + tmp);
    }
    out << body << "end " << checksum << '\n';
    out.flush();
    auto& injector = util::FaultInjector::Global();
    if (injector.Armed() && injector.ShouldFail("checkpoint.write")) {
      out.setstate(std::ios::failbit);
    }
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw CheckpointError("checkpoint: write failed for " + tmp +
                            " (disk full or I/O error?)");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp, remove_ec);
    throw CheckpointError("checkpoint: cannot rename " + tmp + " to " + path +
                          ": " + ec.message());
  }
}

std::string_view VerifyChecksummedBody(std::string_view contents,
                                       const std::string& path) {
  // The `end <checksum>` line must be the final line; anything after it
  // (or a missing/short final line) means truncation or append damage.
  if (contents.empty() || contents.back() != '\n') {
    throw CheckpointError("checkpoint: truncated file " + path);
  }
  const std::size_t end_line_start = contents.rfind('\n', contents.size() - 2);
  const std::size_t body_size =
      end_line_start == std::string_view::npos ? 0 : end_line_start + 1;
  const std::string_view end_line =
      contents.substr(body_size, contents.size() - body_size - 1);
  if (end_line.substr(0, 4) != "end ") {
    throw CheckpointError("checkpoint: missing end line in " + path +
                          " (truncated write?)");
  }
  const std::string_view hex = end_line.substr(4);
  std::uint64_t stored{};
  const auto [hex_ptr, hex_ec] =
      std::from_chars(hex.data(), hex.data() + hex.size(), stored, 16);
  if (hex_ec != std::errc() || hex_ptr != hex.data() + hex.size()) {
    throw CheckpointError("checkpoint: malformed checksum in " + path);
  }
  const std::string_view body = contents.substr(0, body_size);
  if (CheckpointChecksum(body) != stored) {
    throw CheckpointError("checkpoint: checksum mismatch in " + path +
                          " (corrupt or tampered file)");
  }
  return body;
}

// wsnstatic:serdes(Checkpoint, WriteCheckpoint, ReadCheckpoint): resume-file contract; every field must survive a write/read cycle
// wsnstatic:serdes(CheckpointMeta, WriteCheckpoint, ReadCheckpoint): sweep-identity header; a dropped field silently resumes the wrong sweep
// wsnstatic:serdes(CheckpointRow, WriteCheckpoint, ReadCheckpoint): per-config result row; a dropped field loses completed work on resume
void WriteCheckpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::string body;
  body.reserve(256 + checkpoint.rows.size() * 192);
  body += kMagic;
  body += ' ';
  body += std::to_string(kCheckpointFormatVersion);
  body += '\n';
  body += "base_seed " + std::to_string(checkpoint.meta.base_seed) + "\n";
  body += "packet_count " + std::to_string(checkpoint.meta.packet_count) + "\n";
  body += "stride " + std::to_string(checkpoint.meta.stride) + "\n";
  body += "space_size " + std::to_string(checkpoint.meta.space_size) + "\n";
  body +=
      "config_count " + std::to_string(checkpoint.meta.config_count) + "\n";
  body += "rows " + std::to_string(checkpoint.rows.size()) + "\n";
  for (const auto& row : checkpoint.rows) {
    body += "row ";
    body += std::to_string(row.index);
    body += row.failed ? " failed\t" : " ok\t";
    body += SanitizeError(row.error);
    body += '\t';
    body += row.csv_row;
    body += '\n';
  }
  WriteChecksummedFile(path, body);
}

Checkpoint ReadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  const std::string_view body = VerifyChecksummedBody(contents, path);

  // Split the verified body into lines.
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t nl = body.find('\n', pos);
    lines.push_back(body.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (lines.size() < 7) {
    throw CheckpointError("checkpoint: header incomplete in " + path);
  }

  // Magic + version.
  const std::string_view first = lines[0];
  if (first.substr(0, kMagic.size()) != kMagic) {
    throw CheckpointError("checkpoint: " + path +
                          " is not a wsnlink checkpoint file");
  }
  const std::uint64_t version =
      ParseU64(ExpectKeyLine(first, kMagic), "version");
  if (version != static_cast<std::uint64_t>(kCheckpointFormatVersion)) {
    throw CheckpointError(
        "checkpoint: unsupported version " + std::to_string(version) + " in " +
        path + " (this build reads version " +
        std::to_string(kCheckpointFormatVersion) + ")");
  }

  Checkpoint checkpoint;
  checkpoint.meta.base_seed =
      ParseU64(ExpectKeyLine(lines[1], "base_seed"), "base_seed");
  checkpoint.meta.packet_count = static_cast<int>(
      ParseU64(ExpectKeyLine(lines[2], "packet_count"), "packet_count"));
  checkpoint.meta.stride = ParseU64(ExpectKeyLine(lines[3], "stride"), "stride");
  checkpoint.meta.space_size =
      ParseU64(ExpectKeyLine(lines[4], "space_size"), "space_size");
  checkpoint.meta.config_count =
      ParseU64(ExpectKeyLine(lines[5], "config_count"), "config_count");
  const std::uint64_t row_count =
      ParseU64(ExpectKeyLine(lines[6], "rows"), "rows");

  if (lines.size() != 7 + row_count) {
    throw CheckpointError(
        "checkpoint: row count mismatch in " + path + " (header says " +
        std::to_string(row_count) + ", file has " +
        std::to_string(lines.size() - 7) + ")");
  }

  checkpoint.rows.reserve(row_count);
  for (std::uint64_t r = 0; r < row_count; ++r) {
    const std::string_view line = lines[7 + r];
    const std::string_view rest = ExpectKeyLine(line, "row");
    const std::size_t sp = rest.find(' ');
    const std::size_t tab1 = rest.find('\t');
    const std::size_t tab2 =
        tab1 == std::string_view::npos ? tab1 : rest.find('\t', tab1 + 1);
    if (sp == std::string_view::npos || tab1 == std::string_view::npos ||
        tab2 == std::string_view::npos || sp > tab1) {
      throw CheckpointError("checkpoint: malformed row record in " + path);
    }
    CheckpointRow row;
    row.index = ParseU64(rest.substr(0, sp), "row index");
    const std::string_view status = rest.substr(sp + 1, tab1 - sp - 1);
    if (status == "ok") {
      row.failed = false;
    } else if (status == "failed") {
      row.failed = true;
    } else {
      throw CheckpointError("checkpoint: unknown row status '" +
                            std::string(status) + "' in " + path);
    }
    row.error = std::string(rest.substr(tab1 + 1, tab2 - tab1 - 1));
    row.csv_row = std::string(rest.substr(tab2 + 1));
    if (row.index >= checkpoint.meta.config_count) {
      throw CheckpointError("checkpoint: row index " +
                            std::to_string(row.index) +
                            " out of range in " + path);
    }
    checkpoint.rows.push_back(std::move(row));
  }
  return checkpoint;
}

}  // namespace wsnlink::experiment
