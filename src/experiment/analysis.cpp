#include "experiment/analysis.h"

#include "core/models/constants.h"
#include "core/models/per_model.h"
#include "util/table.h"

namespace wsnlink::experiment {

std::vector<core::models::ValidationSample> ToValidationSamples(
    std::span<const SweepPoint> points) {
  std::vector<core::models::ValidationSample> samples;
  samples.reserve(points.size());
  for (const auto& point : points) {
    core::models::ValidationSample s;
    s.config = point.config;
    s.mean_snr_db = point.mean_snr_db;
    s.measured_per = point.measured.per;
    s.measured_service_ms = point.measured.mean_service_ms;
    s.measured_energy_uj_per_bit = point.measured.energy_uj_per_bit;
    s.measured_goodput_kbps = point.measured.goodput_kbps;
    s.measured_plr_radio = point.measured.plr_radio;
    s.measured_utilization = point.measured.utilization;
    s.has_energy = point.measured.delivered_unique > 0;
    samples.push_back(s);
  }
  return samples;
}

std::vector<ZoneSummary> SummariseByZone(std::span<const SweepPoint> points) {
  struct Acc {
    std::size_t n = 0;
    std::size_t n_energy = 0;
    double per = 0.0;
    double goodput = 0.0;
    double energy = 0.0;
    double plr = 0.0;
  };
  Acc dead;
  Acc high;
  Acc medium;
  Acc low;

  for (const auto& p : points) {
    Acc* acc = nullptr;
    if (p.mean_snr_db < core::models::kGreyZoneLowDb) {
      acc = &dead;
    } else {
      switch (core::models::PerModel::ClassifyZone(p.mean_snr_db)) {
        case core::models::PerModel::Zone::kHighImpact:
          acc = &high;
          break;
        case core::models::PerModel::Zone::kMediumImpact:
          acc = &medium;
          break;
        case core::models::PerModel::Zone::kLowImpact:
          acc = &low;
          break;
      }
    }
    ++acc->n;
    acc->per += p.measured.per;
    acc->goodput += p.measured.goodput_kbps;
    acc->plr += p.measured.plr_total;
    if (p.measured.delivered_unique > 0) {
      acc->energy += p.measured.energy_uj_per_bit;
      ++acc->n_energy;
    }
  }

  const auto finish = [](const char* name, const Acc& acc) {
    ZoneSummary z;
    z.zone = name;
    z.configs = acc.n;
    if (acc.n > 0) {
      z.mean_per = acc.per / static_cast<double>(acc.n);
      z.mean_goodput_kbps = acc.goodput / static_cast<double>(acc.n);
      z.mean_plr_total = acc.plr / static_cast<double>(acc.n);
    }
    if (acc.n_energy > 0) {
      z.mean_energy_uj_per_bit =
          acc.energy / static_cast<double>(acc.n_energy);
    }
    return z;
  };

  return {finish("dead (<5 dB)", dead), finish("high (5-12 dB)", high),
          finish("medium (12-19 dB)", medium), finish("low (>=19 dB)", low)};
}

std::string ZoneTable(std::span<const ZoneSummary> zones) {
  util::TextTable table({"zone", "configs", "mean PER", "mean goodput[kbps]",
                         "mean U_eng[uJ/bit]", "mean loss"});
  for (const auto& z : zones) {
    table.NewRow()
        .Add(z.zone)
        .Add(static_cast<unsigned long>(z.configs))
        .Add(z.mean_per, 3)
        .Add(z.mean_goodput_kbps, 2)
        .Add(z.mean_energy_uj_per_bit, 3)
        .Add(z.mean_plr_total, 3);
  }
  return table.ToString();
}

}  // namespace wsnlink::experiment
