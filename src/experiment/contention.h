// Contention-scaling sweep: node count as an experiment axis.
//
// The paper's experiment grid sweeps PHY/MAC/app knobs on one link; the
// multi-node refactor (node/network_simulation.h) opens the axis the paper
// approximates with its Sec. VIII-D collision factor — how many senders
// contend for the medium. A contention sweep runs the same stack
// configuration at a ladder of node counts and reports per-rung aggregate
// behaviour (PER, loss, queue drops, carrier-sense pressure, collisions),
// which is what validates the synthetic interferer approximation against
// emergent contention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stack_config.h"
#include "node/network_simulation.h"

namespace wsnlink::experiment {

/// One contention sweep: a node-count ladder over a fixed configuration.
struct ContentionOptions {
  /// Stack configuration of every sender (distance_m = the first node's
  /// sink distance).
  core::StackConfig config;
  /// The ladder: one network run per entry. Entries must be >= 1.
  std::vector<int> node_counts = {1, 2, 4};
  /// Rung i runs with seed SweepSeed(base_seed, i), so a ladder point is
  /// reproducible in isolation.
  std::uint64_t base_seed = 1;
  /// Packets per node.
  int packet_count = 200;
  node::MacKind mac = node::MacKind::kCsma;
  double lpl_wakeup_interval_ms = 100.0;
  /// Extra sink distance per additional node (node i sits at
  /// distance_m + i * node_spacing_m). 0 = co-located ring.
  double node_spacing_m = 0.0;
  /// Real contention (shared medium) vs the paper's synthetic collision
  /// factor (ablation: shared_medium=false + interferer_duty_cycle>0).
  bool shared_medium = true;
  double capture_margin_db = 3.0;
  double interferer_duty_cycle = 0.0;
  /// Quieten the ambient interference bursts so carrier-sense pressure is
  /// attributable to the contenders alone (on for the contention study).
  bool disable_interference = true;
  /// Upper bound on concurrent rungs; 0 = the shared pool's full width.
  unsigned threads = 0;
  /// Worker threads *inside* each network run (the optimistic parallel
  /// engine, node/timewarp.h). 1 = the sequential kernel; results are
  /// byte-identical either way, so this is purely a wall-clock knob for
  /// ladders whose rungs are large. Must be >= 1.
  int sim_threads = 1;
};

/// One ladder rung.
struct ContentionPoint {
  int nodes = 0;
  std::uint64_t seed = 0;
  node::NetworkResult result;
};

/// Runs the ladder over the shared pool. Deterministic in (options)
/// regardless of worker count: rung i always runs seed
/// SweepSeed(base_seed, i) and lands in slot i.
[[nodiscard]] std::vector<ContentionPoint> RunContentionSweep(
    const ContentionOptions& options);

/// CSV header for SerializeContentionRow.
[[nodiscard]] std::string ContentionCsvHeader();

/// One rung as a locale-independent CSV row (no trailing newline).
[[nodiscard]] std::string SerializeContentionRow(const ContentionPoint& point);

}  // namespace wsnlink::experiment
